// NetMerger (§III-C): the native client half of JBS. One per node, shared
// by every ReduceTask on that node, replacing their MOFCopier thread pools.
// Fetch requests from all reducers are consolidated into one queue per
// remote node (so live connections scale with nodes, not copiers), ordered
// by arrival within a node, and injected round-robin across nodes to keep
// any one ReduceTask's burst from monopolizing the network. Fetched
// segments stay in memory and feed the network-levitated merge — no
// reduce-side spill.
//
// Every wire operation is deadline-bounded: a fetch gets one time budget
// covering all retry attempts, each dial and each chunk round trip may be
// bounded tighter, and Stop() cancels everything in flight — queued and
// executing fetches complete with kUnavailable, so no FetchAndMerge caller
// is left blocked on a silent peer.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "jbs/node_health.h"
#include "mapred/shuffle.h"
#include "transport/connection_manager.h"
#include "transport/deadline.h"
#include "transport/transport.h"

namespace jbs::shuffle {

class NetMerger final : public mr::ShuffleClient {
 public:
  struct Options {
    net::Transport* transport = nullptr;  // required
    int data_threads = 3;                 // paper: 3 native threads
    size_t chunk_size = 128 * 1024;       // max bytes per fetch round trip
    int fetch_window = 4;  // chunk requests kept in flight per connection
                           // (1 = the seed's stop-and-wait ping-pong)
    size_t connection_cache_capacity = 512;
    bool consolidate = true;   // ablation: false = connection per fetch
    bool round_robin = true;   // ablation: false = drain nodes in key order
    int max_fetch_attempts = 3;      // transient-failure retries per fetch
    int retry_backoff_ms = 20;       // doubled per attempt, jittered
    int max_retry_backoff_ms = 2000;  // backoff ceiling (0 = uncapped)
    // Overload pushback (DESIGN.md §16): a kErrorBusy reply is not a
    // failure — the supplier shed the request under admission control.
    // Busy retries honor the server's retry-after hint (plus capped
    // jitter) and draw from this budget, a ledger separate from
    // max_fetch_attempts and from the fetch deadline, so a long overload
    // episode neither burns failure attempts nor converts into spurious
    // failovers / health penalties. Exhausting the budget completes the
    // fetch with kResourceExhausted (no failover — every replica of a hot
    // partition is likely saturated too, and hammering the next one only
    // spreads the overload).
    int pushback_retry_budget = 32;
    int64_t fetch_deadline_ms = 0;   // budget for one fetch incl. retries
                                     // (0 = unbounded)
    int64_t connect_timeout_ms = 0;  // per-dial bound (0 = unbounded)
    int64_t chunk_timeout_ms = 0;    // per chunk round trip (0 = unbounded)
    int64_t connection_idle_ms = 0;  // evict cached connections idle this
                                     // long (0 = LRU only)
    bool verify_crc = true;  // verify chunk CRCs before a byte enters the
                             // merge; a mismatch is a retryable fetch fault
    // Advertise kCapWireCompression in the hello sent on every fresh dial,
    // inviting the supplier to ship eligible chunks compressed (the merger
    // can always decompress — this knob exists for the ablation bench).
    // Whether chunks actually compress is the supplier's decision.
    bool advertise_wire_compress = true;
    // Penalty box (see node_health.h): consecutive failures against one
    // remote node mark it suspect, then penalized; injection routes around
    // a penalized node until its sentence expires.
    int health_suspect_after = 1;
    int health_penalize_after = 3;  // <= 0 disables the box
    int64_t health_penalty_ms = 200;
    int64_t health_penalty_max_ms = 10000;
    int max_failovers = 4;  // replica reroutes per fetch (bounds ping-pong
                            // between two half-dead replica holders)
    uint64_t backoff_jitter_seed = 0x6A6274735F6E6D32ull;  // deterministic
    size_t merge_fan_in = 0;  // >0: hierarchical merge with this fan-in
                              // (the follow-up paper's [22] tree merge);
                              // 0 = flat network-levitated merge
    // Observability: a shared MetricsRegistry / TraceRecorder (e.g. the
    // plugin's, so client and server publish into one exposition), or
    // nullptr for a private one owned by this merger. `instance`
    // distinguishes per-instance gauges when the registry is shared.
    MetricsRegistry* metrics = nullptr;
    TraceRecorder* trace = nullptr;
    size_t trace_capacity = 4096;  // private-recorder ring size
    std::string instance{};
  };

  explicit NetMerger(Options options);
  ~NetMerger() override;

  StatusOr<std::unique_ptr<mr::RecordStream>> FetchAndMerge(
      int partition, const std::vector<mr::MofLocation>& sources) override
      EXCLUDES(sched_mu_);

  /// Cancels all fetch work and joins the data threads. Queued and
  /// in-flight fetches fail with kUnavailable, so every FetchAndMerge
  /// caller — including ones blocked on a silent peer — returns promptly.
  void Stop() override EXCLUDES(sched_mu_, inflight_mu_);
  Stats stats() const override;

  /// Legacy stats view, now a thin read of the MetricsRegistry counters —
  /// kept so existing callers (tests, benches) don't have to learn metric
  /// names.
  struct MergerStats {
    uint64_t fetches = 0;           // segments fetched
    uint64_t chunks = 0;            // fetch round trips
    uint64_t bytes_fetched = 0;
    uint64_t connections_opened = 0;
    uint64_t node_switches = 0;     // scheduler moved to a different node
    uint64_t fetch_errors = 0;      // fetches that exhausted all attempts
    uint64_t fetch_retries = 0;     // transient failures that were retried
    uint64_t deadline_expiries = 0; // fetches that blew their time budget
    uint64_t chunks_corrupt = 0;    // chunks rejected by CRC verification
    uint64_t chunks_compressed = 0; // chunks that arrived kChunkCompressed
    uint64_t failovers = 0;         // fetches rerouted to a replica
    uint64_t penalties = 0;         // penalty-box sentences handed out
    uint64_t pushbacks = 0;         // kErrorBusy replies honored
  };
  MergerStats merger_stats() const;

  /// Health-tracker view of one remote node ("host:port"), for tests and
  /// operators; an expired sentence is applied on read.
  NodeState node_health(const std::string& node);

  /// Connection-cache counters (hits/misses/evictions/dial failures) from
  /// the underlying manager — the raw series merger_stats() used to derive
  /// connections_opened from, now exposed so tests can lock the
  /// no-double-count invariant.
  net::ConnectionManager::Stats connection_stats() const;

  /// The registry this merger publishes into (owned or shared).
  MetricsRegistry& metrics() const { return *metrics_; }
  /// Per-fetch lifecycle timeline (owned or shared).
  TraceRecorder& trace() const { return *trace_; }

  /// Remote nodes with queued (not yet claimed) fetch tasks. Drained
  /// nodes are removed, so an idle merger reports 0.
  size_t pending_node_count() const EXCLUDES(sched_mu_);

 private:
  /// A fully fetched segment plus how to interpret it.
  struct FetchedSegment {
    std::vector<uint8_t> bytes;
    bool compressed = false;
  };

  /// One FetchAndMerge call in flight.
  struct CallContext {
    Mutex mu;
    CondVar done_cv;
    size_t remaining GUARDED_BY(mu) = 0;
    Status error GUARDED_BY(mu);
    std::map<int, FetchedSegment> segments GUARDED_BY(mu);  // map_task -> segment
  };

  struct FetchTask {
    mr::MofLocation source;
    int partition = 0;
    uint64_t fetch_id = 0;  // TraceRecorder id for this fetch's timeline
    std::shared_ptr<CallContext> context;
    // Replica routing: alternate locations holding the same map output
    // (duplicate sources that disagreed on host). When `source` exhausts
    // its attempts or sits in the penalty box, the task is re-enqueued on
    // an alternate instead of failing the reduce.
    std::vector<mr::MofLocation> alternates;
    int reroutes = 0;  // failovers consumed (bounded by max_failovers)
    // One deadline budgets the whole fetch across retries AND failovers;
    // armed by the first ExecuteTask leg so queue wait doesn't count twice.
    bool deadline_armed = false;
    net::Deadline deadline;
  };

  static std::string NodeKey(const mr::MofLocation& loc) {
    return loc.host + ":" + std::to_string(loc.port);
  }

  void WorkerLoop() EXCLUDES(sched_mu_);
  /// Picks the next (node, task) respecting per-node exclusivity, the
  /// round-robin policy, and the penalty box: penalized nodes are skipped,
  /// their queued tasks rerouted to healthy replicas when possible, and
  /// when only penalized work remains the wait is bounded by the earliest
  /// sentence expiry. Blocks until work exists or shutdown.
  bool NextTask(std::string* node, FetchTask* task) EXCLUDES(sched_mu_);
  void ExecuteTask(const std::string& node, FetchTask task)
      EXCLUDES(sched_mu_, inflight_mu_);
  /// Re-enqueues `task` on its next replica after `source` failed with
  /// `why`. Returns false (leaving the task untouched) when no failover is
  /// possible — no alternates, reroute budget spent, fetch deadline blown,
  /// or the merger is stopping — in which case the caller must complete
  /// the task with `why`.
  bool TryFailover(FetchTask& task, const Status& why) EXCLUDES(sched_mu_);
  /// Runs the chunked fetch conversation; returns the segment. Each chunk
  /// round trip is bounded by the sooner of `deadline` and the per-chunk
  /// timeout.
  /// Sends the protocol-v2 capability hello on a freshly dialed
  /// connection (one-way; the server never replies). A send failure is a
  /// dial-grade fault — the socket is already sick — surfaced to the
  /// retry loop like a failed Connect.
  Status SendHello(net::Connection& conn, const net::Deadline& deadline);
  /// `busy_retry_after_ms` (may be null) receives the server's retry-after
  /// hint when the conversation ends in kErrorBusy pushback.
  StatusOr<FetchedSegment> FetchSegment(net::Connection& conn,
                                        const FetchTask& task,
                                        const net::Deadline& deadline,
                                        uint32_t* busy_retry_after_ms);
  void CompleteTask(const FetchTask& task, StatusOr<FetchedSegment> result);
  /// Capped, jittered exponential backoff for retry `attempt` (>= 1),
  /// clamped so the sleep never overruns the fetch deadline.
  int64_t NextBackoffMs(int attempt, const net::Deadline& fetch_deadline)
      EXCLUDES(rng_mu_);
  /// Sleep before honoring a kErrorBusy reply: the server's retry-after
  /// hint plus up to 50% jitter (so pushed-back mergers don't return in
  /// lockstep), capped by max_retry_backoff_ms and the fetch deadline.
  int64_t PushbackDelayMs(uint32_t hint_ms,
                          const net::Deadline& fetch_deadline)
      EXCLUDES(rng_mu_);
  /// Interruptible sleep: returns false when Stop() cut it short.
  bool SleepInterruptible(int64_t ms) EXCLUDES(sched_mu_);
  /// Labels shared by all of this merger's metrics.
  MetricLabels BaseLabels() const;
  /// Publishes `depth` for the node's queue-depth gauge. Touches only the
  /// registry, so it is callable with or without sched_mu_ held (the
  /// registry lock is a leaf, so nesting under sched_mu_ is safe).
  void SetQueueDepth(const std::string& node, size_t depth);
  /// Re-exports the connection-manager counters as gauges (they're owned
  /// by the manager, not the registry). Called from the stats accessors
  /// and Stop(), so dumps taken after shutdown still carry final values.
  void RefreshConnectionGauges() const;

  Options options_;
  net::ConnectionManager connections_;

  // Observability plumbing: pointers into metrics_ (never null; falls back
  // to the owned registry/recorder when options don't share one).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<TraceRecorder> owned_trace_;
  TraceRecorder* trace_ = nullptr;
  MetricCounter* fetches_c_ = nullptr;
  MetricCounter* chunks_c_ = nullptr;
  MetricCounter* bytes_fetched_c_ = nullptr;
  MetricCounter* connections_opened_c_ = nullptr;
  MetricCounter* node_switches_c_ = nullptr;
  MetricCounter* fetch_errors_c_ = nullptr;
  MetricCounter* fetch_retries_c_ = nullptr;
  MetricCounter* deadline_expiries_c_ = nullptr;
  MetricCounter* chunks_corrupt_c_ = nullptr;
  MetricCounter* chunks_compressed_c_ = nullptr;
  MetricCounter* failovers_c_ = nullptr;
  MetricCounter* pushback_c_ = nullptr;
  MetricHistogram* fetch_latency_ms_h_ = nullptr;
  MetricHistogram* fetch_attempts_h_ = nullptr;

  // Built in the constructor once metrics_ is wired (it publishes the
  // per-node health gauges into the same registry).
  std::unique_ptr<NodeHealthTracker> health_;

  mutable Mutex sched_mu_;
  CondVar work_cv_;
  std::map<std::string, std::deque<FetchTask>> node_queues_
      GUARDED_BY(sched_mu_);
  std::set<std::string> busy_nodes_ GUARDED_BY(sched_mu_);
  // Last node serviced (round-robin pointer).
  std::string rr_last_ GUARDED_BY(sched_mu_);
  bool stopping_ GUARDED_BY(sched_mu_) = false;
  std::atomic<bool> cancelled_{false};

  // Ablation-mode (consolidate = false) connections aren't in the
  // connection manager, so Stop() closes them through this set to wake
  // any data thread blocked mid-conversation.
  Mutex inflight_mu_;
  std::set<net::Connection*> inflight_conns_ GUARDED_BY(inflight_mu_);

  Mutex rng_mu_;
  Rng rng_ GUARDED_BY(rng_mu_);

  std::vector<std::thread> workers_;
};

}  // namespace jbs::shuffle
