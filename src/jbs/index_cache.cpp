#include "jbs/index_cache.h"

namespace jbs::shuffle {

StatusOr<mr::MofIndex> IndexCache::GetOrLoad(const mr::MofHandle& handle) {
  {
    MutexLock lock(mu_);
    if (auto* cached = cache_.Get(handle.map_task)) {
      ++stats_.hits;
      return *cached;
    }
    ++stats_.misses;
  }
  auto index = mr::MofIndex::Load(handle.index_path);
  JBS_RETURN_IF_ERROR(index.status());
  MutexLock lock(mu_);
  cache_.Put(handle.map_task, *index);
  return std::move(index).value();
}

IndexCache::Stats IndexCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t IndexCache::size() const {
  MutexLock lock(mu_);
  return cache_.size();
}

}  // namespace jbs::shuffle
