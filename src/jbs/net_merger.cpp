#include "jbs/net_merger.h"

#include <algorithm>
#include <thread>

#include "common/bytes.h"
#include "common/compress.h"
#include "common/logging.h"
#include "jbs/protocol.h"

namespace jbs::shuffle {

namespace {

/// Maps one failed fetch attempt to the health-tracker taxonomy. A dial
/// that never connected is a connect fault regardless of status code; past
/// the dial, the status itself decides.
NodeHealthTracker::Failure ClassifyFailure(const Status& status, bool dialed) {
  if (!dialed) return NodeHealthTracker::Failure::kConnect;
  if (status.code() == StatusCode::kDeadlineExceeded) {
    return NodeHealthTracker::Failure::kTimeout;
  }
  if (status.message().rfind("chunk CRC mismatch", 0) == 0 ||
      status.message().rfind("chunk decompress failed", 0) == 0) {
    // A payload that passed its CRC but won't decompress means the
    // *supplier* shipped damaged bytes (bad memo, bit rot before the CRC
    // was taken) — same taxonomy as corruption on the wire.
    return NodeHealthTracker::Failure::kCorrupt;
  }
  return NodeHealthTracker::Failure::kOther;
}

/// Permanent server verdicts (the supplier answered kFetchError): retrying
/// the same node cannot heal these, but a replica might hold the segment.
bool IsPermanentFetchError(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         status.message().rfind("fetch error:", 0) == 0;
}

/// Overload pushback (the supplier answered kErrorBusy): the request was
/// shed under admission control, not failed. Pushback never counts against
/// node health, never classifies as corruption, and never promotes a
/// failover replica — it retries the same node on its own budget.
bool IsPushback(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().rfind("server busy", 0) == 0;
}

}  // namespace

NetMerger::NetMerger(Options options)
    : options_(options),
      connections_(options.transport, options.connection_cache_capacity,
                   options.connection_idle_ms),
      rng_(options.backoff_jitter_seed) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.trace != nullptr) {
    trace_ = options_.trace;
  } else {
    owned_trace_ = std::make_unique<TraceRecorder>(options_.trace_capacity);
    trace_ = owned_trace_.get();
  }
  // shuffle_* names are shared with the baseline MofCopierClient (same
  // instrumentation, different `client` label) so JBS-vs-baseline
  // comparisons read one exposition; jbs_netmerger_* are JBS-internal.
  const MetricLabels base = BaseLabels();
  fetches_c_ = metrics_->GetCounter("shuffle_fetches_total", base);
  bytes_fetched_c_ = metrics_->GetCounter("shuffle_bytes_fetched_total", base);
  connections_opened_c_ =
      metrics_->GetCounter("shuffle_connections_opened_total", base);
  fetch_errors_c_ = metrics_->GetCounter("shuffle_fetch_errors_total", base);
  fetch_latency_ms_h_ =
      metrics_->GetHistogram("shuffle_fetch_latency_ms", base);
  chunks_c_ = metrics_->GetCounter("jbs_netmerger_chunks_total", base);
  node_switches_c_ =
      metrics_->GetCounter("jbs_netmerger_node_switches_total", base);
  fetch_retries_c_ =
      metrics_->GetCounter("jbs_netmerger_fetch_retries_total", base);
  deadline_expiries_c_ =
      metrics_->GetCounter("jbs_netmerger_deadline_expiries_total", base);
  fetch_attempts_h_ =
      metrics_->GetHistogram("jbs_netmerger_fetch_attempts", base);
  chunks_corrupt_c_ =
      metrics_->GetCounter("jbs_netmerger_chunks_corrupt_total", base);
  chunks_compressed_c_ =
      metrics_->GetCounter("jbs_netmerger_chunks_compressed_total", base);
  failovers_c_ = metrics_->GetCounter("jbs_netmerger_failovers_total", base);
  pushback_c_ = metrics_->GetCounter("jbs_netmerger_pushback_total", base);
  health_ = std::make_unique<NodeHealthTracker>(
      NodeHealthTracker::Options{
          options_.health_suspect_after, options_.health_penalize_after,
          options_.health_penalty_ms, options_.health_penalty_max_ms},
      metrics_, base);
  workers_.reserve(static_cast<size_t>(options_.data_threads));
  for (int i = 0; i < options_.data_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MetricLabels NetMerger::BaseLabels() const {
  MetricLabels labels{{"client", "netmerger"}};
  if (!options_.instance.empty()) {
    labels.emplace_back("instance", options_.instance);
  }
  return labels;
}

void NetMerger::SetQueueDepth(const std::string& node, size_t depth) {
  MetricLabels labels = BaseLabels();
  labels.emplace_back("node", node);
  metrics_->GetGauge("jbs_netmerger_queue_depth", std::move(labels))
      ->Set(static_cast<double>(depth));
}

void NetMerger::RefreshConnectionGauges() const {
  const net::ConnectionManager::Stats cs = connections_.stats();
  const MetricLabels base = BaseLabels();
  const auto set = [&](const char* name, double v) {
    metrics_->GetGauge(name, base)->Set(v);
  };
  set("jbs_connmgr_hits", static_cast<double>(cs.hits));
  set("jbs_connmgr_misses", static_cast<double>(cs.misses));
  set("jbs_connmgr_evictions", static_cast<double>(cs.evictions));
  set("jbs_connmgr_dial_failures", static_cast<double>(cs.dial_failures));
  set("jbs_connmgr_idle_evictions", static_cast<double>(cs.idle_evictions));
  set("jbs_connmgr_active_connections",
      static_cast<double>(connections_.active_connections()));
}

NetMerger::~NetMerger() { Stop(); }

void NetMerger::Stop() {
  std::map<std::string, std::deque<FetchTask>> orphans;
  {
    MutexLock lock(sched_mu_);
    if (stopping_) return;
    stopping_ = true;
    orphans.swap(node_queues_);
  }
  cancelled_.store(true);
  work_cv_.NotifyAll();
  // Wake data threads blocked in Send/Receive on a cached connection and
  // make any racing dial fail fast.
  connections_.Shutdown();
  {
    // Ablation-mode per-fetch connections live outside the manager; close
    // them too so those threads unblock.
    MutexLock lock(inflight_mu_);
    for (net::Connection* conn : inflight_conns_) conn->Close();
  }
  // Fail every queued (never claimed) task so its FetchAndMerge caller
  // unblocks; in-flight tasks are failed by their own data thread once
  // its connection dies.
  for (auto& [node, queue] : orphans) {
    for (FetchTask& task : queue) {
      CompleteTask(task, Unavailable("NetMerger stopped"));
    }
    SetQueueDepth(node, 0);
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  RefreshConnectionGauges();
}

mr::ShuffleClient::Stats NetMerger::stats() const {
  Stats out;
  MergerStats merger = merger_stats();
  out.fetches = merger.fetches;
  out.bytes_fetched = merger.bytes_fetched;
  out.connections_opened = merger.connections_opened;
  return out;
}

NetMerger::MergerStats NetMerger::merger_stats() const {
  // Thin view over the registry counters. connections_opened is counted
  // at the dial site in both modes (the manager reports whether a
  // GetOrConnect actually dialed), so manager-routed dials are never
  // double-counted against the old misses-derived estimate.
  RefreshConnectionGauges();
  MergerStats out;
  out.fetches = fetches_c_->value();
  out.chunks = chunks_c_->value();
  out.bytes_fetched = bytes_fetched_c_->value();
  out.connections_opened = connections_opened_c_->value();
  out.node_switches = node_switches_c_->value();
  out.fetch_errors = fetch_errors_c_->value();
  out.fetch_retries = fetch_retries_c_->value();
  out.deadline_expiries = deadline_expiries_c_->value();
  out.chunks_corrupt = chunks_corrupt_c_->value();
  out.chunks_compressed = chunks_compressed_c_->value();
  out.failovers = failovers_c_->value();
  out.penalties = health_->penalties();
  out.pushbacks = pushback_c_->value();
  return out;
}

NodeState NetMerger::node_health(const std::string& node) {
  return health_->state(node);
}

net::ConnectionManager::Stats NetMerger::connection_stats() const {
  return connections_.stats();
}

size_t NetMerger::pending_node_count() const {
  MutexLock lock(sched_mu_);
  return node_queues_.size();
}

StatusOr<std::unique_ptr<mr::RecordStream>> NetMerger::FetchAndMerge(
    int partition, const std::vector<mr::MofLocation>& sources) {
  // Duplicate locations for one map are either exact duplicates (a
  // speculative attempt reported twice — collapse to one fetch, since
  // fetching twice would consume the stored bytes twice) or replicas:
  // distinct nodes that each hold a copy of the map's output. Replicas
  // become failover alternates — the fetch reroutes to the next copy when
  // its current node exhausts attempts or sits in the penalty box.
  struct Replica {
    mr::MofLocation primary;
    std::vector<mr::MofLocation> alternates;
  };
  std::vector<Replica> unique;
  unique.reserve(sources.size());
  {
    std::map<int, size_t> by_map;  // map_task -> index into `unique`
    for (const mr::MofLocation& source : sources) {
      auto [it, inserted] = by_map.emplace(source.map_task, unique.size());
      if (inserted) {
        unique.push_back(Replica{source, {}});
        continue;
      }
      Replica& replica = unique[it->second];
      const auto same_place = [&](const mr::MofLocation& loc) {
        return loc.host == source.host && loc.port == source.port &&
               loc.node == source.node;
      };
      if (same_place(replica.primary) ||
          std::any_of(replica.alternates.begin(), replica.alternates.end(),
                      same_place)) {
        continue;  // exact duplicate
      }
      replica.alternates.push_back(source);
    }
  }

  auto context = std::make_shared<CallContext>();
  {
    // Not yet shared with any worker, but `remaining` is guarded and this
    // is nowhere near a hot path: take the lock rather than carve out an
    // escape hatch.
    MutexLock context_lock(context->mu);
    context->remaining = unique.size();
  }
  {
    MutexLock lock(sched_mu_);
    if (stopping_) return Unavailable("NetMerger stopped");
    // Consolidation: requests are grouped by target node, ordered by
    // arrival within each group.
    for (const Replica& replica : unique) {
      const uint64_t fetch_id = trace_->BeginFetch();
      trace_->Record(fetch_id, TraceEvent::kQueued, replica.primary.map_task);
      FetchTask task;
      task.source = replica.primary;
      task.partition = partition;
      task.fetch_id = fetch_id;
      task.context = context;
      task.alternates = replica.alternates;
      // Initial routing: prefer the first replica not currently serving a
      // penalty sentence. If every copy is boxed, queue on the primary and
      // let the scheduler wait out the earliest release.
      if (health_->penalized(NodeKey(task.source))) {
        for (mr::MofLocation& alternate : task.alternates) {
          if (!health_->penalized(NodeKey(alternate))) {
            std::swap(task.source, alternate);
            break;
          }
        }
      }
      const std::string node = NodeKey(task.source);
      auto& queue = node_queues_[node];
      queue.push_back(std::move(task));
      SetQueueDepth(node, queue.size());
    }
  }
  work_cv_.NotifyAll();

  MutexLock lock(context->mu);
  while (context->remaining != 0) context->done_cv.Wait(lock);
  if (!context->error.ok()) return context->error;

  // Network-levitated merge: all segments live in memory; merge directly.
  std::vector<std::unique_ptr<mr::RecordStream>> streams;
  streams.reserve(unique.size());
  for (const Replica& replica : unique) {
    auto it = context->segments.find(replica.primary.map_task);
    if (it == context->segments.end()) {
      return Internal("segment missing for map " +
                      std::to_string(replica.primary.map_task));
    }
    auto stream = mr::OpenSegment(std::move(it->second.bytes),
                                  it->second.compressed);
    JBS_RETURN_IF_ERROR(stream.status());
    streams.push_back(std::move(stream).value());
  }
  if (options_.merge_fan_in > 0 &&
      streams.size() > options_.merge_fan_in) {
    return mr::HierarchicalMerge(std::move(streams), options_.merge_fan_in);
  }
  return std::unique_ptr<mr::RecordStream>(
      std::make_unique<mr::KWayMerger>(std::move(streams)));
}

bool NetMerger::NextTask(std::string* node, FetchTask* task) {
  MutexLock lock(sched_mu_);
  for (;;) {
    if (stopping_) return false;
    // Reroute queued work off penalized nodes: a task with a healthy
    // replica should not wait out another node's sentence. Bounded by the
    // per-task reroute budget so two half-dead replicas can't ping-pong a
    // task forever.
    {
      std::vector<FetchTask> moved;
      for (auto it = node_queues_.begin(); it != node_queues_.end();) {
        if (it->second.empty() || !health_->penalized(it->first)) {
          ++it;
          continue;
        }
        auto& queue = it->second;
        for (auto qit = queue.begin(); qit != queue.end();) {
          auto alternate = std::find_if(
              qit->alternates.begin(), qit->alternates.end(),
              [&](const mr::MofLocation& loc) {
                return !health_->penalized(NodeKey(loc));
              });
          if (alternate == qit->alternates.end() ||
              qit->reroutes >= options_.max_failovers) {
            ++qit;
            continue;
          }
          const size_t alt_index =
              static_cast<size_t>(alternate - qit->alternates.begin());
          FetchTask rerouted = std::move(*qit);
          qit = queue.erase(qit);
          std::swap(rerouted.source, rerouted.alternates[alt_index]);
          moved.push_back(std::move(rerouted));
        }
        SetQueueDepth(it->first, queue.size());
        if (queue.empty()) {
          it = node_queues_.erase(it);
        } else {
          ++it;
        }
      }
      for (FetchTask& rerouted : moved) {
        ++rerouted.reroutes;
        failovers_c_->Increment();
        trace_->Record(rerouted.fetch_id, TraceEvent::kFailover,
                       static_cast<int64_t>(rerouted.alternates.size()));
        const std::string dest = NodeKey(rerouted.source);
        auto& queue = node_queues_[dest];
        queue.push_back(std::move(rerouted));
        SetQueueDepth(dest, queue.size());
      }
    }
    // Candidate nodes: nonempty queue, not currently serviced by another
    // data thread (one in-flight conversation per connection), not in the
    // penalty box.
    bool skipped_penalized = false;
    auto claimable = [&](const std::string& key,
                         const std::deque<FetchTask>& queue) {
      if (queue.empty() || busy_nodes_.contains(key)) return false;
      if (health_->penalized(key)) {
        skipped_penalized = true;
        return false;
      }
      return true;
    };
    auto take_from = [&](const std::string& key,
                         std::deque<FetchTask>& queue) {
      *node = key;
      *task = std::move(queue.front());
      queue.pop_front();
      busy_nodes_.insert(key);
      if (options_.round_robin) rr_last_ = key;
      SetQueueDepth(key, queue.size());
      // Erase drained queues: otherwise node_queues_ keeps one tombstone
      // entry per remote node ever fetched from for the job's lifetime.
      // (*node is the surviving copy; `key` dangles after the erase.)
      if (queue.empty()) node_queues_.erase(*node);
      return true;
    };
    if (options_.round_robin && !node_queues_.empty()) {
      // Start scanning strictly after the last serviced node, wrapping.
      auto start = node_queues_.upper_bound(rr_last_);
      for (size_t i = 0; i < node_queues_.size(); ++i) {
        if (start == node_queues_.end()) start = node_queues_.begin();
        if (claimable(start->first, start->second)) {
          return take_from(start->first, start->second);
        }
        ++start;
      }
    } else {
      // FIFO-by-key-order (the unbalanced policy JBS replaces).
      for (auto& [key, queue] : node_queues_) {
        if (claimable(key, queue)) {
          return take_from(key, queue);
        }
      }
    }
    if (skipped_penalized) {
      // Only penalized work is pending: sleep until the box next opens
      // (or new work / shutdown wakes us) instead of forever.
      if (auto release = health_->earliest_release()) {
        (void)work_cv_.WaitUntil(lock, *release);
        continue;
      }
      // The sentence expired between the scan and here; rescan.
      continue;
    }
    work_cv_.Wait(lock);
  }
}

void NetMerger::WorkerLoop() {
  std::string node;
  FetchTask task;
  std::string last_node;
  while (NextTask(&node, &task)) {
    if (node != last_node && !last_node.empty()) {
      node_switches_c_->Increment();
    }
    last_node = node;
    ExecuteTask(node, std::move(task));
    // Drop the shared context before blocking in NextTask again, so the
    // FetchAndMerge caller is the last owner once all segments land.
    task = FetchTask{};
    {
      MutexLock lock(sched_mu_);
      busy_nodes_.erase(node);
    }
    work_cv_.NotifyAll();
  }
}

int64_t NetMerger::NextBackoffMs(int attempt,
                                 const net::Deadline& fetch_deadline) {
  int64_t backoff;
  {
    // Shared capped+jittered helper (common/rng.h): the shift is bounded
    // (`20 << 40` is UB on int and a multi-day sleep besides) and the
    // jitter decorrelates data threads hammering one recovering node.
    MutexLock lock(rng_mu_);
    backoff = CappedJitteredBackoffMs(options_.retry_backoff_ms, attempt,
                                      options_.max_retry_backoff_ms, rng_);
  }
  if (!fetch_deadline.infinite()) {
    backoff = std::min(backoff, fetch_deadline.remaining_ms());
  }
  return backoff;
}

int64_t NetMerger::PushbackDelayMs(uint32_t hint_ms,
                                   const net::Deadline& fetch_deadline) {
  // Honor the server's hint but desynchronize: every shed merger got
  // roughly the same hint, and returning in lockstep would re-create the
  // queue spike that caused the shed. Jitter adds up to +50%.
  int64_t delay = std::max<int64_t>(1, hint_ms);
  {
    MutexLock lock(rng_mu_);
    delay += static_cast<int64_t>(
        rng_.Below(static_cast<uint64_t>(delay / 2 + 1)));
  }
  if (options_.max_retry_backoff_ms > 0) {
    delay = std::min<int64_t>(delay, options_.max_retry_backoff_ms);
  }
  if (!fetch_deadline.infinite()) {
    delay = std::min(delay, fetch_deadline.remaining_ms());
  }
  return std::max<int64_t>(delay, 0);
}

bool NetMerger::SleepInterruptible(int64_t ms) {
  MutexLock lock(sched_mu_);
  const auto wake =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!stopping_ &&
         work_cv_.WaitUntil(lock, wake) != std::cv_status::timeout) {
  }
  return !stopping_;
}

Status NetMerger::SendHello(net::Connection& conn,
                            const net::Deadline& deadline) {
  Hello hello;
  hello.version = kProtocolVersion;
  if (options_.advertise_wire_compress) hello.caps |= kCapWireCompression;
  return conn.Send(EncodeHello(hello), deadline);
}

void NetMerger::ExecuteTask(const std::string& node, FetchTask task) {
  // Transient fetch failures (dropped connection, refused dial, blown
  // chunk deadline, corrupt chunk) are retried with capped jittered
  // backoff, re-dialing each time — a fetch failure must not fail the
  // ReduceTask the way a map-side fault would. One deadline budgets the
  // whole fetch — retries and replica failovers included — so a silent
  // peer costs bounded time, not attempts × timeout × replicas.
  if (!task.deadline_armed) {
    task.deadline = net::Deadline::AfterMs(options_.fetch_deadline_ms);
    task.deadline_armed = true;
  }
  const net::Deadline fetch_deadline = task.deadline;
  const auto fetch_start = std::chrono::steady_clock::now();
  int attempts_used = 0;
  int attempt = 0;            // transient-failure attempts consumed
  int pushbacks_honored = 0;  // kErrorBusy budget consumed — separate ledger
  bool dialed_ok = false;
  StatusOr<FetchedSegment> result = Unavailable("not fetched");
  uint32_t busy_hint_ms = 0;
  for (;;) {
    attempts_used = attempt + 1;
    dialed_ok = false;
    busy_hint_ms = 0;
    if (cancelled_.load()) {
      result = Unavailable("NetMerger stopped");
      break;
    }
    if (fetch_deadline.expired()) {
      deadline_expiries_c_->Increment();
      result = DeadlineExceeded("fetch deadline exhausted for map " +
                                std::to_string(task.source.map_task));
      break;
    }
    const net::Deadline dial_deadline = net::Deadline::Sooner(
        fetch_deadline, net::Deadline::AfterMs(options_.connect_timeout_ms));
    if (options_.consolidate) {
      bool dialed = false;
      auto conn = connections_.GetOrConnect(
          task.source.host, task.source.port, dial_deadline, &dialed);
      // The manager is the sole authority on whether this lookup opened a
      // connection; counting here (not from the manager's miss counter)
      // keeps one increment per dial across both modes.
      if (dialed) connections_opened_c_->Increment();
      if (conn.ok()) {
        dialed_ok = true;
        trace_->Record(task.fetch_id, TraceEvent::kDialed, attempt + 1);
        // The capability hello goes out once per connection, not per
        // fetch — a cache hit reuses a socket the server already knows.
        Status hello_st = dialed ? SendHello(**conn, dial_deadline)
                                 : Status::Ok();
        if (hello_st.ok()) {
          result = FetchSegment(**conn, task, fetch_deadline, &busy_hint_ms);
        } else {
          result = hello_st;
        }
        if (!result.ok()) {
          connections_.Invalidate(task.source.host, task.source.port);
        }
      } else {
        result = conn.status();
      }
    } else {
      // Ablation / Hadoop-style: a fresh connection per fetch.
      auto conn = options_.transport->Connect(
          task.source.host, task.source.port, dial_deadline);
      if (conn.ok()) {
        net::Connection* raw = conn->get();
        bool raced_stop = false;
        {
          MutexLock lock(inflight_mu_);
          if (cancelled_.load()) {
            raced_stop = true;
          } else {
            inflight_conns_.insert(raw);
          }
        }
        if (raced_stop) {
          (*conn)->Close();
          result = Unavailable("NetMerger stopped");
          break;
        }
        connections_opened_c_->Increment();
        dialed_ok = true;
        trace_->Record(task.fetch_id, TraceEvent::kDialed, attempt + 1);
        Status hello_st = SendHello(**conn, dial_deadline);
        result = hello_st.ok()
                     ? FetchSegment(**conn, task, fetch_deadline,
                                    &busy_hint_ms)
                     : StatusOr<FetchedSegment>(hello_st);
        {
          MutexLock lock(inflight_mu_);
          inflight_conns_.erase(raw);
        }
        (*conn)->Close();
      } else {
        result = conn.status();
      }
    }
    if (result.ok()) break;
    if (cancelled_.load()) break;
    if (IsPushback(result.status())) {
      // Server pushback (DESIGN.md §16): the supplier shed this request
      // under admission control. No attempt is consumed and no health
      // bookkeeping runs — the node is healthy, just saturated. Honor the
      // retry-after hint (jittered) against the pushback budget.
      pushback_c_->Increment();
      if (pushbacks_honored >= options_.pushback_retry_budget) break;
      ++pushbacks_honored;
      trace_->Record(task.fetch_id, TraceEvent::kRetry, attempt);
      if (!SleepInterruptible(PushbackDelayMs(busy_hint_ms, fetch_deadline))) {
        result = Unavailable("NetMerger stopped");
        break;
      }
      continue;
    }
    // Permanent errors (the server answered with kFetchError) don't heal
    // with retries of the same node — but a replica might hold the MOF, so
    // they still fail over below.
    if (IsPermanentFetchError(result.status())) break;
    // Health bookkeeping: every transient attempt failure counts against
    // the node. A fresh penalty sentence also evicts the cached connection
    // so the first fetch after release re-dials instead of inheriting a
    // wedged socket.
    if (health_->RecordFailure(node,
                               ClassifyFailure(result.status(), dialed_ok))) {
      connections_.Invalidate(task.source.host, task.source.port);
    }
    ++attempt;
    if (attempt >= options_.max_fetch_attempts) break;
    fetch_retries_c_->Increment();
    trace_->Record(task.fetch_id, TraceEvent::kRetry, attempt);
    // Interruptible sleep: Stop() must not wait out a backoff.
    if (!SleepInterruptible(NextBackoffMs(attempt, fetch_deadline))) {
      result = Unavailable("NetMerger stopped");
      break;
    }
  }
  if (!cancelled_.load() &&
      (result.ok() || IsPermanentFetchError(result.status()) ||
       IsPushback(result.status()))) {
    // Either way the node is alive and speaking protocol: streak cleared.
    health_->RecordSuccess(node);
  }
  // Pushback never promotes a replica: every copy of a hot partition is
  // likely saturated too, and rerouting just spreads the overload.
  if (!result.ok() && !IsPushback(result.status()) &&
      TryFailover(task, result.status())) {
    return;
  }
  const double latency_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - fetch_start)
                                .count();
  fetch_latency_ms_h_->Observe(latency_ms);
  fetch_attempts_h_->Observe(static_cast<double>(attempts_used));
  CompleteTask(task, std::move(result));
}

bool NetMerger::TryFailover(FetchTask& task, const Status& why) {
  if (task.alternates.empty()) return false;
  if (task.reroutes >= options_.max_failovers) return false;
  if (cancelled_.load()) return false;
  if (task.deadline_armed && task.deadline.expired()) return false;
  // Prefer the first alternate not serving a sentence; failing that, take
  // the first one anyway — its box may open before this node heals, and
  // the scheduler knows how to wait out a sentence.
  size_t pick = 0;
  for (size_t i = 0; i < task.alternates.size(); ++i) {
    if (!health_->penalized(NodeKey(task.alternates[i]))) {
      pick = i;
      break;
    }
  }
  std::swap(task.source, task.alternates[pick]);
  ++task.reroutes;
  const std::string dest = NodeKey(task.source);
  {
    MutexLock lock(sched_mu_);
    if (stopping_) {
      // Undo so the caller completes the task against the node that
      // actually produced `why`.
      --task.reroutes;
      std::swap(task.source, task.alternates[pick]);
      return false;
    }
    failovers_c_->Increment();
    trace_->Record(task.fetch_id, TraceEvent::kFailover,
                   static_cast<int64_t>(task.alternates.size()));
    JBS_DEBUG << "failover: map " << task.source.map_task << " -> " << dest
              << " after: " << why.message();
    auto& queue = node_queues_[dest];
    queue.push_back(std::move(task));
    SetQueueDepth(dest, queue.size());
  }
  work_cv_.NotifyAll();
  return true;
}

StatusOr<NetMerger::FetchedSegment> NetMerger::FetchSegment(
    net::Connection& conn, const FetchTask& task,
    const net::Deadline& deadline, uint32_t* busy_retry_after_ms) {
  FetchedSegment fetched;
  std::vector<uint8_t>& segment = fetched.bytes;
  // Per-chunk counters accumulate locally and fold into the registry once
  // per segment, so a multi-chunk fetch issues one atomic add per counter,
  // not one per round trip.
  uint64_t local_chunks = 0;
  uint64_t local_bytes = 0;

  // Each wire operation gets the tighter of the fetch budget and the
  // per-chunk timeout; the chunk clock restarts per operation, so a slow
  // *peer* trips it but a long multi-chunk segment does not.
  const auto op_deadline = [&] {
    return net::Deadline::Sooner(
        deadline, net::Deadline::AfterMs(options_.chunk_timeout_ms));
  };

  const auto send_request = [&](uint64_t offset) -> Status {
    FetchRequest request;
    request.map_task = task.source.map_task;
    request.partition = task.partition;
    request.offset = offset;
    request.max_len = static_cast<uint32_t>(options_.chunk_size);
    return conn.Send(EncodeRequest(request), op_deadline());
  };
  // Receives one data reply, validating it continues the segment at
  // `expect_offset`; appends the payload and returns its size.
  const auto receive_chunk = [&](uint64_t expect_offset,
                                 uint64_t* total) -> StatusOr<uint64_t> {
    auto reply = conn.Receive(op_deadline());
    JBS_RETURN_IF_ERROR(reply.status());
    if (reply->type == kFetchError) {
      auto error = DecodeError(*reply);
      return IoError("fetch error: " +
                     (error ? error->message : "undecodable"));
    }
    if (reply->type == kErrorBusy) {
      // Checked before any data decode, so a busy frame can never reach
      // the CRC verifier and masquerade as chunk corruption.
      auto busy = DecodeBusy(*reply);
      if (!busy) return IoError("undecodable busy frame");
      if (busy_retry_after_ms != nullptr) {
        *busy_retry_after_ms = busy->retry_after_ms;
      }
      return ResourceExhausted(
          "server busy: map " + std::to_string(task.source.map_task) +
          " shed, retry after " + std::to_string(busy->retry_after_ms) +
          "ms");
    }
    std::span<const uint8_t> data;
    auto header = DecodeData(*reply, &data);
    if (!header) return IoError("undecodable fetch data frame");
    if (options_.verify_crc && (header->flags & kChunkHasCrc) != 0) {
      // End-to-end integrity: recompute the wire CRC (header fields folded
      // over the payload CRC) before any byte can enter the merge. Runs
      // before the sequence check so a flipped offset or length field is
      // attributed to corruption, not to a confused server.
      const uint32_t got = ChunkWireCrc(*header, Crc32(data));
      if (got != header->crc32) {
        chunks_corrupt_c_->Increment();
        trace_->Record(task.fetch_id, TraceEvent::kCorrupt,
                       static_cast<int64_t>(header->offset));
        return IoError("chunk CRC mismatch for map " +
                       std::to_string(task.source.map_task) + " at offset " +
                       std::to_string(header->offset));
      }
    }
    if (header->map_task != task.source.map_task ||
        header->partition != task.partition ||
        header->offset != expect_offset) {
      return Internal("fetch reply out of sequence");
    }
    *total = header->segment_total;
    fetched.compressed = (header->flags & kSegmentCompressed) != 0;
    // Wire compression: the CRC above covered the compressed payload, so
    // a damaged chunk was already rejected without paying for this
    // decompress. Offsets stay in logical coordinates — only the payload
    // shrank — so the stride/window bookkeeping below never notices.
    uint64_t logical = data.size();
    if ((header->flags & kChunkCompressed) != 0) {
      auto decoded = Decompress(data);
      if (!decoded.ok()) {
        chunks_corrupt_c_->Increment();
        trace_->Record(task.fetch_id, TraceEvent::kCorrupt,
                       static_cast<int64_t>(header->offset));
        return IoError("chunk decompress failed for map " +
                       std::to_string(task.source.map_task) + " at offset " +
                       std::to_string(header->offset) + ": " +
                       decoded.status().message());
      }
      // The server must honor our max_len ask and the segment bound in
      // logical bytes; a violation here is a protocol breach, not line
      // noise, so it is not retried as corruption.
      if (decoded->size() > options_.chunk_size ||
          expect_offset + decoded->size() > header->segment_total) {
        return Internal("compressed chunk overruns its logical bounds");
      }
      logical = decoded->size();
      chunks_compressed_c_->Increment();
      segment.insert(segment.end(), decoded->begin(), decoded->end());
    } else {
      segment.insert(segment.end(), data.begin(), data.end());
    }
    ++local_chunks;
    local_bytes += logical;
    trace_->Record(task.fetch_id, TraceEvent::kChunkReceived,
                   static_cast<int64_t>(logical));
    return logical;
  };

  // First chunk alone: it establishes segment_total (so the segment vector
  // is reserved once instead of reallocating per chunk) and the server's
  // chunk stride (the server may cap below our chunk_size ask).
  JBS_RETURN_IF_ERROR(send_request(0));
  trace_->Record(task.fetch_id, TraceEvent::kRequestSent);
  uint64_t total = 0;
  auto first = receive_chunk(0, &total);
  JBS_RETURN_IF_ERROR(first.status());
  segment.reserve(total);
  uint64_t offset = *first;
  if (offset < total) {
    if (*first == 0) return Internal("server made no progress");
    const uint64_t stride = *first;
    // Windowed pipelining: keep up to fetch_window chunk requests in
    // flight so the server's disk stage works ahead of the network and
    // each reply costs far less than a full round trip. fetch_window = 1
    // degrades to the seed's stop-and-wait ping-pong.
    const int window = std::max(1, options_.fetch_window);
    uint64_t next_send = offset;
    int in_flight = 0;
    while (in_flight < window && next_send < total) {
      JBS_RETURN_IF_ERROR(send_request(next_send));
      next_send += stride;
      ++in_flight;
    }
    while (offset < total) {
      auto chunk = receive_chunk(offset, &total);
      JBS_RETURN_IF_ERROR(chunk.status());
      if (*chunk == 0) return Internal("server made no progress");
      offset += *chunk;
      --in_flight;
      while (in_flight < window && next_send < total) {
        JBS_RETURN_IF_ERROR(send_request(next_send));
        next_send += stride;
        ++in_flight;
      }
    }
  }
  chunks_c_->Increment(local_chunks);
  bytes_fetched_c_->Increment(local_bytes);
  fetches_c_->Increment();
  return fetched;
}

void NetMerger::CompleteTask(const FetchTask& task,
                             StatusOr<FetchedSegment> result) {
  std::shared_ptr<CallContext> context = task.context;
  MutexLock lock(context->mu);
  if (result.ok()) {
    trace_->Record(task.fetch_id, TraceEvent::kMerged,
                   static_cast<int64_t>(result->bytes.size()));
    context->segments[task.source.map_task] = std::move(result).value();
  } else {
    trace_->Record(task.fetch_id, TraceEvent::kFailed,
                   static_cast<int64_t>(result.status().code()));
    if (context->error.ok()) context->error = result.status();
    if (!cancelled_.load()) {
      // Tasks drained by Stop() aren't fetch failures; count only fetches
      // that genuinely exhausted their attempts.
      fetch_errors_c_->Increment();
    }
  }
  --context->remaining;
  if (context->remaining == 0) context->done_cv.NotifyAll();
}

}  // namespace jbs::shuffle
