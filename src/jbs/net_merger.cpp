#include "jbs/net_merger.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "jbs/protocol.h"

namespace jbs::shuffle {

NetMerger::NetMerger(Options options)
    : options_(options),
      connections_(options.transport, options.connection_cache_capacity) {
  workers_.reserve(static_cast<size_t>(options_.data_threads));
  for (int i = 0; i < options_.data_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

NetMerger::~NetMerger() { Stop(); }

void NetMerger::Stop() {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  connections_.CloseAll();
}

mr::ShuffleClient::Stats NetMerger::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  Stats out;
  out.fetches = stats_.fetches;
  out.bytes_fetched = stats_.bytes_fetched;
  out.connections_opened = stats_.connections_opened;
  return out;
}

NetMerger::MergerStats NetMerger::merger_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  MergerStats out = stats_;
  // Consolidated dials are counted by the connection manager; ablation-mode
  // per-fetch dials are counted directly in stats_.
  out.connections_opened += connections_.stats().misses;
  return out;
}

StatusOr<std::unique_ptr<mr::RecordStream>> NetMerger::FetchAndMerge(
    int partition, const std::vector<mr::MofLocation>& sources) {
  auto context = std::make_shared<CallContext>();
  context->remaining = sources.size();
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (stopping_) return Unavailable("NetMerger stopped");
    // Consolidation: requests are grouped by target node, ordered by
    // arrival within each group.
    for (const mr::MofLocation& source : sources) {
      node_queues_[NodeKey(source)].push_back(
          FetchTask{source, partition, context});
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(context->mu);
  context->done_cv.wait(lock, [&] { return context->remaining == 0; });
  if (!context->error.ok()) return context->error;

  // Network-levitated merge: all segments live in memory; merge directly.
  std::vector<std::unique_ptr<mr::RecordStream>> streams;
  streams.reserve(sources.size());
  for (const mr::MofLocation& source : sources) {
    auto it = context->segments.find(source.map_task);
    if (it == context->segments.end()) {
      return Internal("segment missing for map " +
                      std::to_string(source.map_task));
    }
    auto stream = mr::OpenSegment(std::move(it->second.bytes),
                                  it->second.compressed);
    JBS_RETURN_IF_ERROR(stream.status());
    streams.push_back(std::move(stream).value());
  }
  if (options_.merge_fan_in > 0 &&
      streams.size() > options_.merge_fan_in) {
    return mr::HierarchicalMerge(std::move(streams), options_.merge_fan_in);
  }
  return std::unique_ptr<mr::RecordStream>(
      std::make_unique<mr::KWayMerger>(std::move(streams)));
}

bool NetMerger::NextTask(std::string* node, FetchTask* task) {
  std::unique_lock<std::mutex> lock(sched_mu_);
  for (;;) {
    if (stopping_) return false;
    // Candidate nodes: nonempty queue, not currently serviced by another
    // data thread (one in-flight conversation per connection).
    auto take_from = [&](const std::string& key,
                         std::deque<FetchTask>& queue) {
      *node = key;
      *task = std::move(queue.front());
      queue.pop_front();
      busy_nodes_.insert(key);
      if (options_.round_robin) rr_last_ = key;
      return true;
    };
    if (options_.round_robin && !node_queues_.empty()) {
      // Start scanning strictly after the last serviced node, wrapping.
      auto start = node_queues_.upper_bound(rr_last_);
      for (size_t i = 0; i < node_queues_.size(); ++i) {
        if (start == node_queues_.end()) start = node_queues_.begin();
        if (!start->second.empty() && !busy_nodes_.contains(start->first)) {
          return take_from(start->first, start->second);
        }
        ++start;
      }
    } else {
      // FIFO-by-key-order (the unbalanced policy JBS replaces).
      for (auto& [key, queue] : node_queues_) {
        if (!queue.empty() && !busy_nodes_.contains(key)) {
          return take_from(key, queue);
        }
      }
    }
    work_cv_.wait(lock);
  }
}

void NetMerger::WorkerLoop() {
  std::string node;
  FetchTask task;
  std::string last_node;
  while (NextTask(&node, &task)) {
    if (node != last_node && !last_node.empty()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.node_switches;
    }
    last_node = node;
    ExecuteTask(node, task);
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      busy_nodes_.erase(node);
    }
    work_cv_.notify_all();
  }
}

void NetMerger::ExecuteTask(const std::string& node, const FetchTask& task) {
  // Transient fetch failures (dropped connection, refused dial) are
  // retried with exponential backoff, re-dialing each time — a fetch
  // failure must not fail the ReduceTask the way a map-side fault would.
  StatusOr<FetchedSegment> result = Unavailable("not fetched");
  for (int attempt = 0; attempt < options_.max_fetch_attempts; ++attempt) {
    if (attempt > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.fetch_retries;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.retry_backoff_ms << (attempt - 1)));
    }
    if (options_.consolidate) {
      auto conn =
          connections_.GetOrConnect(task.source.host, task.source.port);
      if (conn.ok()) {
        result = FetchSegment(**conn, task);
        if (!result.ok()) {
          connections_.Invalidate(task.source.host, task.source.port);
        }
      } else {
        result = conn.status();
      }
    } else {
      // Ablation / Hadoop-style: a fresh connection per fetch.
      auto conn =
          options_.transport->Connect(task.source.host, task.source.port);
      if (conn.ok()) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.connections_opened;
        }
        result = FetchSegment(**conn, task);
        (*conn)->Close();
      } else {
        result = conn.status();
      }
    }
    if (result.ok()) break;
    // Permanent errors (the server answered with kFetchError) don't heal
    // with retries.
    if (result.status().code() == StatusCode::kIoError &&
        result.status().message().rfind("fetch error:", 0) == 0) {
      break;
    }
  }
  (void)node;
  CompleteTask(task, std::move(result));
}

StatusOr<NetMerger::FetchedSegment> NetMerger::FetchSegment(
    net::Connection& conn, const FetchTask& task) {
  FetchedSegment fetched;
  std::vector<uint8_t>& segment = fetched.bytes;
  // Per-chunk counters accumulate locally and fold into stats_ once per
  // segment, so a multi-chunk fetch takes one stats lock, not one per
  // round trip.
  uint64_t local_chunks = 0;
  uint64_t local_bytes = 0;

  const auto send_request = [&](uint64_t offset) -> Status {
    FetchRequest request;
    request.map_task = task.source.map_task;
    request.partition = task.partition;
    request.offset = offset;
    request.max_len = static_cast<uint32_t>(options_.chunk_size);
    return conn.Send(EncodeRequest(request));
  };
  // Receives one data reply, validating it continues the segment at
  // `expect_offset`; appends the payload and returns its size.
  const auto receive_chunk = [&](uint64_t expect_offset,
                                 uint64_t* total) -> StatusOr<uint64_t> {
    auto reply = conn.Receive();
    JBS_RETURN_IF_ERROR(reply.status());
    if (reply->type == kFetchError) {
      auto error = DecodeError(*reply);
      return IoError("fetch error: " +
                     (error ? error->message : "undecodable"));
    }
    std::span<const uint8_t> data;
    auto header = DecodeData(*reply, &data);
    if (!header) return IoError("undecodable fetch data frame");
    if (header->map_task != task.source.map_task ||
        header->partition != task.partition ||
        header->offset != expect_offset) {
      return Internal("fetch reply out of sequence");
    }
    *total = header->segment_total;
    fetched.compressed = (header->flags & kSegmentCompressed) != 0;
    segment.insert(segment.end(), data.begin(), data.end());
    ++local_chunks;
    local_bytes += data.size();
    return static_cast<uint64_t>(data.size());
  };

  // First chunk alone: it establishes segment_total (so the segment vector
  // is reserved once instead of reallocating per chunk) and the server's
  // chunk stride (the server may cap below our chunk_size ask).
  JBS_RETURN_IF_ERROR(send_request(0));
  uint64_t total = 0;
  auto first = receive_chunk(0, &total);
  JBS_RETURN_IF_ERROR(first.status());
  segment.reserve(total);
  uint64_t offset = *first;
  if (offset < total) {
    if (*first == 0) return Internal("server made no progress");
    const uint64_t stride = *first;
    // Windowed pipelining: keep up to fetch_window chunk requests in
    // flight so the server's disk stage works ahead of the network and
    // each reply costs far less than a full round trip. fetch_window = 1
    // degrades to the seed's stop-and-wait ping-pong.
    const int window = std::max(1, options_.fetch_window);
    uint64_t next_send = offset;
    int in_flight = 0;
    while (in_flight < window && next_send < total) {
      JBS_RETURN_IF_ERROR(send_request(next_send));
      next_send += stride;
      ++in_flight;
    }
    while (offset < total) {
      auto chunk = receive_chunk(offset, &total);
      JBS_RETURN_IF_ERROR(chunk.status());
      if (*chunk == 0) return Internal("server made no progress");
      offset += *chunk;
      --in_flight;
      while (in_flight < window && next_send < total) {
        JBS_RETURN_IF_ERROR(send_request(next_send));
        next_send += stride;
        ++in_flight;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.chunks += local_chunks;
    stats_.bytes_fetched += local_bytes;
    ++stats_.fetches;
  }
  return fetched;
}

void NetMerger::CompleteTask(const FetchTask& task,
                             StatusOr<FetchedSegment> result) {
  std::shared_ptr<CallContext> context = task.context;
  std::lock_guard<std::mutex> lock(context->mu);
  if (result.ok()) {
    context->segments[task.source.map_task] = std::move(result).value();
  } else {
    if (context->error.ok()) context->error = result.status();
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.fetch_errors;
  }
  --context->remaining;
  if (context->remaining == 0) context->done_cv.notify_all();
}

}  // namespace jbs::shuffle
