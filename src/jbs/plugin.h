// JBS as a transparent plug-in (§III-A): wires a MofSupplier per node and a
// NetMerger per node into the engine's ShufflePlugin boundary, over either
// the TCP or the SoftRdma transport. Invoked "based on a runtime user
// parameter" — here, the Config keys below; when not loaded the engine
// runs whatever other plugin it was given, unchanged.
#pragma once

#include <memory>

#include "jbs/mof_supplier.h"
#include "jbs/net_merger.h"
#include "mapred/shuffle.h"
#include "transport/rdma_transport.h"
#include "transport/transport.h"

namespace jbs::shuffle {

enum class TransportKind { kTcp, kRdma };

struct JbsOptions {
  TransportKind transport = TransportKind::kTcp;
  size_t buffer_size = 128 * 1024;
  size_t buffer_count = 64;
  int data_threads = 3;
  int prefetch_batch = 4;
  int prefetch_threads = 2;      // MofSupplier disk-stage pool
  size_t fd_cache_entries = 128; // MofSupplier open-fd LRU
  int fetch_window = 4;          // NetMerger chunk requests in flight
  size_t connection_cache_capacity = 512;
  bool pipelined = true;    // MofSupplier prefetch pipeline
  bool consolidate = true;  // NetMerger connection consolidation
  bool round_robin = true;  // NetMerger balanced injection
  size_t merge_fan_in = 0;  // >0 enables the hierarchical merge [22]
  int64_t fetch_deadline_ms = 0;   // per-fetch budget incl. retries (0=off)
  int64_t connect_timeout_ms = 0;  // per-dial bound (0=off)
  int64_t chunk_timeout_ms = 0;    // per chunk round trip (0=off)
  int64_t connection_idle_ms = 0;  // cached-connection staleness (0=off)
  // Integrity + failover (DESIGN.md §11): per-chunk CRC stamping/checking
  // and the NetMerger penalty box.
  bool chunk_crc = true;             // supplier stamps chunk CRCs
  bool verify_crc = true;            // merger rejects mismatching chunks
  size_t crc_cache_entries = 4096;   // supplier per-chunk CRC memo
  int health_suspect_after = 1;
  int health_penalize_after = 3;     // <= 0 disables the penalty box
  int64_t health_penalty_ms = 200;
  int64_t health_penalty_max_ms = 10000;
  // Zero-copy serve path (DESIGN.md §13): supplier sendfile threshold
  // (0 = pooled buffers only) and the per-connection inbound frame cap
  // enforced by both transports against the untrusted length prefix.
  uint64_t sendfile_min_bytes = 0;
  size_t max_frame_bytes = 64 * 1024 * 1024;
  // Negotiated wire compression (DESIGN.md §14): the supplier compresses
  // eligible chunks for peers that advertised the capability, and the
  // merger advertises it whenever the knob is on.
  bool wire_compress = false;
  uint64_t wire_compress_min_bytes = 4096;
  double wire_compress_min_ratio = 0.9;
  size_t compress_cache_entries = 1024;
  // Overload control (DESIGN.md §16): supplier admission bounds (0 = off)
  // and the merger's kErrorBusy retry budget.
  size_t admission_max_queue = 0;
  uint64_t admission_max_inflight_bytes = 0;
  double admission_datacache_watermark = 0;
  int admission_acquire_timeout_ms = 100;
  int pushback_retry_budget = 32;
  // Thread-per-core execution model (DESIGN.md §15): TCP server event-loop
  // engine, loop-shard count (0 = per core, capped at 8), and MofSupplier
  // serve shards (0 = per core; connections pin to the shard matching
  // their accepting loop).
  net::Engine engine = net::Engine::kEpoll;
  int transport_loops = 1;
  int serve_shards = 1;
};

class JbsShufflePlugin final : public mr::ShufflePlugin {
 public:
  using Options = JbsOptions;

  explicit JbsShufflePlugin(Options options = Options());

  /// Reads jbs.* keys from a Config (transport buffer size etc.).
  static Options OptionsFromConfig(const Config& conf);

  std::string name() const override;
  std::unique_ptr<mr::ShuffleServer> CreateServer(int node,
                                                  const Config& conf) override;
  std::unique_ptr<mr::ShuffleClient> CreateClient(int node,
                                                  const Config& conf) override;

  net::Transport* transport() { return transport_.get(); }

  /// Unified observability: every supplier and merger this plugin creates
  /// publishes into this registry (gauges carry an `instance="nodeN"`
  /// label) and this per-fetch trace ring, so one DumpText() shows the
  /// whole job's shuffle.
  MetricsRegistry& metrics() { return metrics_; }
  TraceRecorder& trace() { return trace_; }

 private:
  Options options_;
  MetricsRegistry metrics_;
  TraceRecorder trace_{16384};
  std::unique_ptr<net::Transport> transport_;
};

}  // namespace jbs::shuffle
