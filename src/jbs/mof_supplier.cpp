#include "jbs/mof_supplier.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <climits>

#include "common/bytes.h"
#include "common/compress.h"
#include "common/failpoints.h"
#include "common/logging.h"

namespace jbs::shuffle {

namespace {

/// pread the range at `offset` from `fd` into `out` (already sized).
/// The `supplier.pread` failpoint scripts EIO/short reads here — the
/// syscall boundary external chaos can't reach (DESIGN.md §16).
Status PreadFd(int fd, const std::string& path, uint64_t offset,
               std::span<uint8_t> out) {
  size_t done = 0;
  while (done < out.size()) {
    size_t want = out.size() - done;
    if (const auto fp = JBS_FAILPOINT("supplier.pread")) {
      if (fp.kind == failpoints::Action::Kind::kError) {
        errno = fp.err;
        return IoError("pread " + path);
      }
      if (fp.kind == failpoints::Action::Kind::kShortRead) {
        want = std::min<size_t>(want,
                                static_cast<size_t>(std::max<uint64_t>(
                                    1, fp.arg)));
      }
    }
    const ssize_t n = ::pread(fd, out.data() + done, want,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("pread " + path);
    }
    if (n == 0) return IoError("unexpected EOF in " + path);
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// pread attempts per chunk: a failed read gets one retry through a
/// reopened descriptor (the cache entry is invalidated between attempts —
/// the common transient cause is a stale fd after file replacement, and a
/// one-shot EIO storm also recovers here instead of surfacing to the
/// merger as a fetch error).
constexpr int kPreadAttempts = 2;

}  // namespace

MofSupplier::MofSupplier(Options options)
    : options_(options),
      data_cache_(options.buffer_size, options.buffer_count),
      index_cache_(options.index_cache_entries) {
  // §15 serve shards: each owns a slice of the fd/memo cache budget (the
  // router hashes a given path or chunk key to exactly one shard, so the
  // aggregate capacity is unchanged) plus its own send stage.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t n_shards =
      options_.serve_shards > 0
          ? static_cast<size_t>(options_.serve_shards)
          : static_cast<size_t>(std::min(8u, hw));
  const auto slice = [n_shards](size_t total) {
    return std::max<size_t>(1, total / n_shards);
  };
  shards_.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<ServeShard>(
        slice(options_.fd_cache_entries), slice(options_.crc_cache_entries),
        slice(options_.compress_cache_entries), options_.buffer_count));
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  // shuffle_* names are shared with the baseline HttpShuffleServer (same
  // instrumentation, different `server` label) so JBS-vs-baseline
  // comparisons read one exposition; jbs_mofsupplier_* are JBS-internal.
  const MetricLabels base = BaseLabels();
  requests_c_ = metrics_->GetCounter("shuffle_requests_total", base);
  bytes_served_c_ = metrics_->GetCounter("shuffle_bytes_served_total", base);
  errors_c_ = metrics_->GetCounter("shuffle_serve_errors_total", base);
  request_latency_ms_h_ =
      metrics_->GetHistogram("shuffle_request_latency_ms", base);
  batches_c_ = metrics_->GetCounter("jbs_mofsupplier_batches_total", base);
  group_switches_c_ =
      metrics_->GetCounter("jbs_mofsupplier_group_switches_total", base);
  disconnect_purges_c_ =
      metrics_->GetCounter("jbs_mofsupplier_disconnect_purges_total", base);
  sendfile_chunks_c_ =
      metrics_->GetCounter("jbs_mofsupplier_sendfile_chunks_total", base);
  sendfile_bytes_c_ =
      metrics_->GetCounter("jbs_mofsupplier_sendfile_bytes_total", base);
  crc_cache_hits_c_ =
      metrics_->GetCounter("jbs_mofsupplier_crc_cache_hits_total", base);
  crc_cache_misses_c_ =
      metrics_->GetCounter("jbs_mofsupplier_crc_cache_misses_total", base);
  compress_cache_hits_c_ =
      metrics_->GetCounter("jbs_mofsupplier_compress_cache_hits_total", base);
  compress_cache_misses_c_ = metrics_->GetCounter(
      "jbs_mofsupplier_compress_cache_misses_total", base);
  chunks_compressed_c_ =
      metrics_->GetCounter("jbs_mofsupplier_chunks_compressed_total", base);
  compress_bailouts_c_ =
      metrics_->GetCounter("jbs_mofsupplier_compress_bailouts_total", base);
  wire_bytes_logical_c_ =
      metrics_->GetCounter("jbs_wire_bytes_logical_total", base);
  wire_bytes_wire_c_ = metrics_->GetCounter("jbs_wire_bytes_wire_total", base);
  compress_ratio_h_ = metrics_->GetHistogram("jbs_wire_compress_ratio", base);
  // Overload-control series (DESIGN.md §16): one shed counter per
  // admission decision point, split by a `reason` label so the exposition
  // shows *which* bound is saturating; the sum is jbs_supplier_shed_total.
  const auto shed_labels = [&](const char* reason) {
    MetricLabels labels = base;
    labels.emplace_back("reason", reason);
    return labels;
  };
  shed_queue_c_ =
      metrics_->GetCounter("jbs_supplier_shed_total", shed_labels("queue"));
  shed_inflight_c_ = metrics_->GetCounter("jbs_supplier_shed_total",
                                          shed_labels("inflight_bytes"));
  shed_datacache_c_ = metrics_->GetCounter("jbs_supplier_shed_total",
                                           shed_labels("datacache"));
  queue_depth_h_ = metrics_->GetHistogram("jbs_mofsupplier_queue_depth", base);
}

uint32_t MofSupplier::ChunkDataCrc(const FetchRequest& request,
                                   std::span<const uint8_t> data) {
  const CrcKey key{request.map_task, request.partition, request.offset,
                   static_cast<uint64_t>(data.size())};
  ServeShard& shard = MemoShardOf(key);
  {
    MutexLock lock(shard.crc_mu);
    if (const uint32_t* cached = shard.crc_cache.Get(key)) {
      crc_cache_hits_c_->Increment();
      return *cached;
    }
  }
  // Hash outside the lock: the CRC pass over a 128KB chunk is the
  // expensive part and must not serialize the disk-thread pool.
  const uint32_t crc = Crc32(data);
  {
    MutexLock lock(shard.crc_mu);
    shard.crc_cache.Put(key, crc);
  }
  crc_cache_misses_c_->Increment();
  return crc;
}

bool MofSupplier::LookupChunkCrc(const FetchRequest& request, uint64_t length,
                                 uint32_t* crc) {
  const CrcKey key{request.map_task, request.partition, request.offset,
                   length};
  ServeShard& shard = MemoShardOf(key);
  MutexLock lock(shard.crc_mu);
  const uint32_t* cached = shard.crc_cache.Get(key);
  if (cached == nullptr) return false;
  *crc = *cached;
  return true;
}

void MofSupplier::StampChunkCrc(FetchDataHeader* header,
                                const FetchRequest& request,
                                std::span<const uint8_t> data) {
  if (!options_.chunk_crc) return;
  header->flags |= kChunkHasCrc;
  // The cached part covers the payload; the 28-byte header fold is cheap
  // enough to pay per send (it differs per retransmit anyway only if the
  // request does).
  header->crc32 = ChunkWireCrc(*header, ChunkDataCrc(request, data));
}

MetricLabels MofSupplier::BaseLabels() const {
  MetricLabels labels{{"server", "mofsupplier"}};
  if (!options_.instance.empty()) {
    labels.emplace_back("instance", options_.instance);
  }
  return labels;
}

void MofSupplier::RefreshGauges() const {
  const MetricLabels base = BaseLabels();
  const auto set = [&](const char* name, double v) {
    metrics_->GetGauge(name, base)->Set(v);
  };
  const FdCache::Stats fd = AggregateFdStats();
  set("jbs_mofsupplier_fdcache_hits", static_cast<double>(fd.hits));
  set("jbs_mofsupplier_fdcache_misses", static_cast<double>(fd.misses));
  set("jbs_mofsupplier_fdcache_evictions", static_cast<double>(fd.evictions));
  set("jbs_mofsupplier_fdcache_open_failures",
      static_cast<double>(fd.open_failures));
  set("fd_cache_emergency_evictions",
      static_cast<double>(fd.emergency_evictions));
  const IndexCache::Stats index = index_cache_.stats();
  set("jbs_mofsupplier_indexcache_hits", static_cast<double>(index.hits));
  set("jbs_mofsupplier_indexcache_misses", static_cast<double>(index.misses));
  // DataCache occupancy: buffers checked out by the disk stage or waiting
  // in the send queue.
  set("jbs_mofsupplier_datacache_buffers_total",
      static_cast<double>(data_cache_.capacity()));
  set("jbs_mofsupplier_datacache_buffers_in_use",
      static_cast<double>(data_cache_.capacity() - data_cache_.available()));
  // Overload-control gauges (DESIGN.md §16): threads parked on the
  // DataCache and bounded-wait expiries — the saturation signals admission
  // control acts on.
  set("buffer_pool_waiters", static_cast<double>(data_cache_.waiters()));
  set("jbs_mofsupplier_datacache_acquire_timeouts",
      static_cast<double>(data_cache_.stats().acquire_timeouts));
  size_t send_depth = 0;
  for (const auto& shard : shards_) send_depth += shard->send_queue.size();
  set("jbs_mofsupplier_send_queue_depth", static_cast<double>(send_depth));
  set("jbs_mofsupplier_pending_groups",
      static_cast<double>(pending_group_count()));
  {
    MutexLock lock(mu_);
    set("jbs_mofsupplier_queued_requests",
        static_cast<double>(queued_requests_));
  }
  // Process-wide user-space payload-copy odometer (framing layer). The
  // zero-copy serve path's whole point is that this stays flat while
  // bytes_served climbs.
  set("jbs_serve_bytes_copied_total",
      static_cast<double>(PayloadCopyBytes()));
  if (endpoint_) {
    const net::ServerEndpoint::Stats ep = endpoint_->stats();
    set("jbs_mofsupplier_endpoint_bytes_sent",
        static_cast<double>(ep.bytes_sent));
    set("jbs_mofsupplier_endpoint_send_queue_depth",
        static_cast<double>(ep.send_queue_depth));
    set("jbs_mofsupplier_endpoint_connections_accepted",
        static_cast<double>(ep.connections_accepted));
  }
}

FdCache::Stats MofSupplier::AggregateFdStats() const {
  FdCache::Stats total;
  for (const auto& shard : shards_) {
    const FdCache::Stats s = shard->fd_cache.stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.open_failures += s.open_failures;
    total.emergency_evictions += s.emergency_evictions;
  }
  return total;
}

MofSupplier::~MofSupplier() { Stop(); }

Status MofSupplier::Start() {
  if (options_.transport == nullptr) {
    return InvalidArgument("MofSupplier needs a transport");
  }
  auto endpoint = options_.transport->CreateServer();
  JBS_RETURN_IF_ERROR(endpoint.status());
  endpoint_ = std::move(endpoint).value();
  net::ServerEndpoint::Handlers handlers;
  handlers.on_frame = [this](net::ConnId conn, Frame frame) {
    OnFrame(conn, std::move(frame));
  };
  handlers.on_disconnect = [this](net::ConnId conn) { OnDisconnect(conn); };
  JBS_RETURN_IF_ERROR(endpoint_->Start(std::move(handlers)));
  // Serialized ablation mode keeps the seed's single disk thread; the
  // pipelined serve path runs a pool plus the dedicated send stage.
  const int disk_threads =
      options_.pipelined ? std::max(1, options_.prefetch_threads) : 1;
  disk_threads_.reserve(static_cast<size_t>(disk_threads));
  for (int i = 0; i < disk_threads; ++i) {
    disk_threads_.emplace_back([this] { DiskLoop(); });
  }
  if (options_.pipelined) {
    for (auto& shard : shards_) {
      ServeShard* raw = shard.get();
      raw->send_thread = std::thread([this, raw] { SendLoop(*raw); });
    }
  }
  return Status::Ok();
}

uint16_t MofSupplier::port() const {
  return endpoint_ ? endpoint_->port() : 0;
}

Status MofSupplier::PublishMof(const mr::MofHandle& handle) {
  MutexLock lock(mu_);
  published_[handle.map_task] = handle;
  return Status::Ok();
}

void MofSupplier::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  data_cache_.Cancel();  // unblock disk threads parked on a dry pool
  for (auto& thread : disk_threads_) {
    if (thread.joinable()) thread.join();
  }
  // Producers are gone: close the stage boundaries and let each shard's
  // send thread drain already-read replies before exiting.
  for (auto& shard : shards_) shard->send_queue.Close();
  for (auto& shard : shards_) {
    if (shard->send_thread.joinable()) shard->send_thread.join();
  }
  if (endpoint_) endpoint_->Stop();
  RefreshGauges();
}

mr::ShuffleServer::Stats MofSupplier::stats() const {
  Stats out;
  out.requests = requests_c_->value();
  out.bytes_served = bytes_served_c_->value();
  return out;
}

size_t MofSupplier::pending_group_count() const {
  MutexLock lock(mu_);
  return groups_.size();
}

MofSupplier::SupplierStats MofSupplier::supplier_stats() const {
  // Thin view over the registry counters.
  RefreshGauges();
  SupplierStats out;
  out.requests = requests_c_->value();
  out.bytes_served = bytes_served_c_->value();
  out.batches = batches_c_->value();
  out.group_switches = group_switches_c_->value();
  out.errors = errors_c_->value();
  out.disconnect_purges = disconnect_purges_c_->value();
  out.bytes_logical = wire_bytes_logical_c_->value();
  out.bytes_wire = wire_bytes_wire_c_->value();
  out.chunks_compressed = chunks_compressed_c_->value();
  out.compress_bailouts = compress_bailouts_c_->value();
  out.shed = shed_queue_c_->value() + shed_inflight_c_->value() +
             shed_datacache_c_->value();
  out.index = index_cache_.stats();
  out.fd = AggregateFdStats();
  out.request_latency_ms = request_latency_ms_h_->summary();
  return out;
}

void MofSupplier::OnFrame(net::ConnId conn, Frame frame) {
  if (frame.type == kHello) {
    auto hello = DecodeHello(frame);
    if (!hello) {
      JBS_WARN << "MofSupplier: undecodable hello frame";
      return;
    }
    ServeShard& shard = ConnShardOf(conn);
    MutexLock lock(shard.caps_mu);
    shard.conn_caps[conn] = hello->caps;
    return;
  }
  auto request = DecodeRequest(frame);
  if (!request) {
    JBS_WARN << "MofSupplier: undecodable frame type "
             << static_cast<int>(frame.type);
    return;
  }
  requests_c_->Increment();
  PendingRequest pending{conn, *request, std::chrono::steady_clock::now()};
  if (options_.wire_compress) {
    ServeShard& shard = ConnShardOf(conn);
    MutexLock lock(shard.caps_mu);
    auto it = shard.conn_caps.find(conn);
    pending.compress_ok =
        it != shard.conn_caps.end() && (it->second & kCapWireCompression) != 0;
  }
  {
    MutexLock lock(mu_);
    // Admission control (DESIGN.md §16): shed the newest request instead
    // of queueing unboundedly. Runs on the transport event thread, so
    // both the decision and the pushback reply must never block.
    const size_t queued = queued_requests_;
    queue_depth_h_->Observe(static_cast<double>(queued));
    if (options_.admission_max_queue > 0 &&
        queued >= options_.admission_max_queue) {
      lock.Unlock();
      shed_queue_c_->Increment();
      SendBusy(conn, *request, RetryAfterHintMs(queued));
      return;
    }
    if (options_.admission_max_inflight_bytes > 0 &&
        admitted_bytes_.load(std::memory_order_relaxed) + request->max_len >
            options_.admission_max_inflight_bytes) {
      lock.Unlock();
      shed_inflight_c_->Increment();
      SendBusy(conn, *request, RetryAfterHintMs(queued));
      return;
    }
    ++queued_requests_;
    admitted_bytes_.fetch_add(request->max_len, std::memory_order_relaxed);
    const int group_key =
        options_.pipelined ? request->map_task
                           : -1;  // serialized mode: one global FIFO
    auto& queue = groups_[group_key];
    if (options_.pipelined) {
      // Order within a group by (partition, offset) so consecutive disk
      // reads walk the MOF forward.
      auto insert_at = std::find_if(
          queue.begin(), queue.end(), [&](const PendingRequest& other) {
            if (other.request.partition != request->partition) {
              return request->partition < other.request.partition;
            }
            return request->offset < other.request.offset;
          });
      queue.insert(insert_at, std::move(pending));
    } else {
      queue.push_back(std::move(pending));
    }
  }
  work_cv_.NotifyOne();
}

void MofSupplier::OnDisconnect(net::ConnId conn) {
  {
    ServeShard& shard = ConnShardOf(conn);
    MutexLock lock(shard.caps_mu);
    shard.conn_caps.erase(conn);
  }
  uint64_t purged = 0;
  uint64_t released_bytes = 0;
  {
    MutexLock lock(mu_);
    for (auto it = groups_.begin(); it != groups_.end();) {
      auto& queue = it->second;
      const size_t before = queue.size();
      queue.erase(std::remove_if(queue.begin(), queue.end(),
                                 [&](const PendingRequest& pending) {
                                   if (pending.conn != conn) return false;
                                   released_bytes += pending.request.max_len;
                                   return true;
                                 }),
                  queue.end());
      purged += before - queue.size();
      // Same eager erasure as NextBatch; busy_groups_ is a separate set,
      // so erasing a checked-out group's (now empty) queue entry is safe.
      it = queue.empty() ? groups_.erase(it) : std::next(it);
    }
    queued_requests_ -= static_cast<size_t>(purged);
  }
  admitted_bytes_.fetch_sub(released_bytes, std::memory_order_relaxed);
  if (purged > 0) disconnect_purges_c_->Increment(purged);
  // Requests already checked out by a disk thread or sitting in the send
  // queue still flow through; their SendAsync fails against the dead
  // ConnId and is counted as an error.
}

bool MofSupplier::NextBatch(std::vector<PendingRequest>* batch,
                            int* group_key) {
  batch->clear();
  MutexLock lock(mu_);
  for (;;) {
    if (stopping_) return false;
    // Round-robin across MOF groups, starting strictly after the last
    // group served and skipping groups another disk thread has checked
    // out (per-group exclusivity keeps (map, partition) replies in offset
    // order across the thread pool).
    auto it = groups_.upper_bound(rr_last_);
    for (size_t i = 0; i < groups_.size(); ++i) {
      if (it == groups_.end()) it = groups_.begin();
      if (!busy_groups_.contains(it->first)) {
        *group_key = it->first;
        auto& queue = it->second;
        const int take = options_.pipelined ? options_.prefetch_batch : 1;
        for (int k = 0; k < take && !queue.empty(); ++k) {
          batch->push_back(std::move(queue.front()));
          queue.pop_front();
          --queued_requests_;
        }
        busy_groups_.insert(it->first);
        rr_last_ = it->first;
        // Groups are erased as they drain; OnFrame recreates them on
        // demand, so finished map tasks don't leak queue entries.
        if (queue.empty()) groups_.erase(it);
        return true;
      }
      ++it;
    }
    work_cv_.Wait(lock);
  }
}

void MofSupplier::DiskLoop() {
  std::vector<PendingRequest> batch;
  int group_key = 0;
  while (NextBatch(&batch, &group_key)) {
    batches_c_->Increment();
    for (const PendingRequest& pending : batch) {
      if (options_.pipelined) {
        PrefetchOne(pending);
      } else {
        ServeInline(pending);
      }
      // Admission byte budget: the request is no longer "inflight" once
      // the disk stage is done with it, whatever the outcome — replies
      // queued past this point are bounded by DataCache buffers instead.
      admitted_bytes_.fetch_sub(pending.request.max_len,
                                std::memory_order_relaxed);
    }
    {
      MutexLock lock(mu_);
      busy_groups_.erase(group_key);
    }
    // Another disk thread may be waiting for this group to free up.
    work_cv_.NotifyAll();
  }
}

bool MofSupplier::ResolveRequest(
    const PendingRequest& pending, mr::MofHandle* handle,
    FetchDataHeader* header, uint64_t* disk_offset, uint64_t* chunk,
    const std::function<void(const std::string&)>& fail) {
  const FetchRequest& request = pending.request;
  bool found = false;
  {
    MutexLock lock(mu_);
    auto it = published_.find(request.map_task);
    if (it != published_.end()) {
      *handle = it->second;
      found = true;
    }
  }
  if (!found) {
    fail("unknown MOF");
    return false;
  }
  auto index = index_cache_.GetOrLoad(*handle);
  if (!index.ok()) {
    fail(index.status().ToString());
    return false;
  }
  if (request.partition < 0 || request.partition >= index->num_partitions()) {
    fail("partition out of range");
    return false;
  }
  const mr::IndexEntry& entry = index->entry(request.partition);
  if (request.offset > entry.length) {
    fail("offset beyond segment");
    return false;
  }
  // Chunk size: bounded by the client's ask, our transport buffer, and
  // what's left of the segment.
  const uint64_t remaining = entry.length - request.offset;
  *chunk = std::min<uint64_t>({remaining, request.max_len,
                               options_.buffer_size - kDataHeaderSize});
  *disk_offset = entry.offset + request.offset;
  header->map_task = request.map_task;
  header->partition = request.partition;
  header->offset = request.offset;
  header->segment_total = entry.length;
  header->flags = index->compressed() ? kSegmentCompressed : 0;
  // Lock-free group-switch accounting: exchange is exact under the
  // serialized path and a faithful-enough approximation when several disk
  // threads interleave (each observed transition is a real switch).
  if (last_served_mof_.exchange(request.map_task, std::memory_order_relaxed) !=
      request.map_task) {
    group_switches_c_->Increment();
  }
  return true;
}

Status MofSupplier::PreadInto(const mr::MofHandle& handle, uint64_t offset,
                              std::span<uint8_t> out) {
  const std::string path = handle.data_path.string();
  FdCache& fd_cache = PathShardOf(path).fd_cache;
  Status st = Internal("pread not attempted");
  for (int attempt = 0; attempt < kPreadAttempts; ++attempt) {
    auto file = fd_cache.Open(path);
    if (!file.ok()) {
      // NotFound (the MOF is gone) won't improve on retry.
      if (file.status().code() == StatusCode::kNotFound) {
        return file.status();
      }
      st = file.status();
      continue;
    }
    ChargeDiskModel(file->fd(), offset, out.size());
    st = PreadFd(file->fd(), path, offset, out);
    if (st.ok()) return st;
    // A failed read may mean the descriptor went stale (file replaced);
    // drop it so the retry (and any later request) reopens the path.
    fd_cache.Invalidate(path);
  }
  return st;
}

void MofSupplier::ChargeDiskModel(int fd, uint64_t offset, size_t bytes) {
  if (options_.disk_seek_ms <= 0 && options_.disk_bytes_per_sec <= 0) return;
  std::chrono::steady_clock::time_point ready;
  {
    MutexLock lock(disk_model_mu_);
    // A read that does not continue the descriptor's previous read breaks
    // the sequential stream (readahead misses; on a spindle, the head
    // moves). Descriptor reuse after fd-cache eviction at worst charges
    // one spurious seek.
    auto [it, inserted] = disk_stream_pos_.try_emplace(fd, 0);
    const bool seek = inserted || it->second != offset;
    it->second = offset + bytes;
    double ms = seek ? options_.disk_seek_ms : 0.0;
    if (options_.disk_bytes_per_sec > 0) {
      ms += static_cast<double>(bytes) / options_.disk_bytes_per_sec * 1e3;
    }
    const auto now = std::chrono::steady_clock::now();
    if (disk_available_at_ < now) disk_available_at_ = now;
    disk_available_at_ +=
        std::chrono::microseconds(static_cast<int64_t>(ms * 1e3));
    ready = disk_available_at_;
  }
  std::this_thread::sleep_until(ready);
}

bool MofSupplier::TrySendfileReply(const PendingRequest& pending,
                                   const mr::MofHandle& handle,
                                   FetchDataHeader header,
                                   uint64_t disk_offset, uint64_t chunk) {
  if (options_.sendfile_min_bytes == 0 ||
      chunk < options_.sendfile_min_bytes) {
    return false;
  }
  if (!endpoint_->supports_file_segments()) return false;
  if (options_.chunk_crc) {
    // The CRC needs the bytes; only a memoized chunk can skip the
    // read-back. A miss takes the pooled path once and memoizes there.
    uint32_t data_crc = 0;
    if (!LookupChunkCrc(pending.request, chunk, &data_crc)) return false;
    header.flags |= kChunkHasCrc;
    header.crc32 = ChunkWireCrc(header, data_crc);
  }
  auto file = PathShardOf(handle.data_path.string())
                  .fd_cache.Open(handle.data_path.string());
  if (!file.ok()) return false;  // let the pooled path report the failure
  // The kernel still reads the platters; charge the same modeled disk
  // time the pooled path would pay, so sendfile's measured win is the
  // skipped copies, not a free disk.
  ChargeDiskModel(file->fd(), disk_offset, static_cast<size_t>(chunk));
  ReadyReply ready;
  ready.conn = pending.conn;
  // The fd-cache handle rides as the frame's lease: eviction or
  // invalidation can't close the descriptor while the event thread is
  // still sendfile()-ing from it. Read the fd before moving the handle —
  // argument evaluation order is unspecified.
  const int fd = file->fd();
  ready.frame = EncodeDataFile(
      header, fd, disk_offset, chunk,
      std::make_shared<FdCache::Handle>(std::move(file).value()));
  ready.chunk = chunk;
  ready.wire = chunk;
  ready.enqueued = pending.enqueued;
  sendfile_chunks_c_->Increment();
  sendfile_bytes_c_->Increment(chunk);
  (void)ConnShardOf(pending.conn).send_queue.Push(std::move(ready));
  return true;
}

bool MofSupplier::WireCompressEligible(const PendingRequest& pending,
                                       const FetchDataHeader& header,
                                       uint64_t chunk) const {
  // Segment-compressed MOFs are already dense on disk; double-compressing
  // them burns CPU for nothing, so they always ship as stored.
  return pending.compress_ok && chunk >= options_.wire_compress_min_bytes &&
         chunk > 0 && (header.flags & kSegmentCompressed) == 0;
}

MofSupplier::CompressMemo MofSupplier::LookupCompressed(
    const FetchRequest& request, uint64_t chunk,
    std::shared_ptr<const std::vector<uint8_t>>* payload, uint32_t* crc) {
  const CrcKey key{request.map_task, request.partition, request.offset,
                   chunk};
  ServeShard& shard = MemoShardOf(key);
  MutexLock lock(shard.compress_mu);
  const CompressedChunk* cached = shard.compress_cache.Get(key);
  if (cached == nullptr) return CompressMemo::kMiss;
  if (cached->data == nullptr) return CompressMemo::kIncompressible;
  *payload = cached->data;
  *crc = cached->crc;
  return CompressMemo::kCompressed;
}

std::shared_ptr<const std::vector<uint8_t>> MofSupplier::CompressAndMemoize(
    const FetchRequest& request, std::span<const uint8_t> data,
    uint32_t* crc) {
  // Compress and hash outside the lock — this is the expensive part, and
  // per-group checkout already guarantees no two disk threads race on the
  // same chunk.
  std::vector<uint8_t> compressed = Compress(data);
  const CrcKey key{request.map_task, request.partition, request.offset,
                   static_cast<uint64_t>(data.size())};
  const double min_ratio = options_.wire_compress_min_ratio;
  ServeShard& shard = MemoShardOf(key);
  if (static_cast<double>(compressed.size()) >
      static_cast<double>(data.size()) * min_ratio) {
    compress_bailouts_c_->Increment();
    MutexLock lock(shard.compress_mu);
    shard.compress_cache.Put(key, CompressedChunk{});  // memoized: ship raw
    return nullptr;
  }
  auto shared =
      std::make_shared<const std::vector<uint8_t>>(std::move(compressed));
  *crc = Crc32(*shared);
  MutexLock lock(shard.compress_mu);
  shard.compress_cache.Put(key, CompressedChunk{shared, *crc});
  return shared;
}

void MofSupplier::EnqueueCompressed(
    const PendingRequest& pending, FetchDataHeader header, uint64_t chunk,
    std::shared_ptr<const std::vector<uint8_t>> payload, uint32_t payload_crc,
    bool inline_send) {
  // kChunkCompressed must be in `flags` before the CRC fold — the flag is
  // header-covered so a stripped flag (which would make the client merge
  // compressed bytes as data) is detected as corruption.
  header.flags |= kChunkCompressed;
  if (options_.chunk_crc) {
    header.flags |= kChunkHasCrc;
    header.crc32 = ChunkWireCrc(header, payload_crc);
  }
  chunks_compressed_c_->Increment();
  compress_ratio_h_->Observe(static_cast<double>(chunk) /
                             static_cast<double>(payload->size()));
  ReadyReply ready;
  ready.conn = pending.conn;
  ready.chunk = chunk;
  ready.wire = payload->size();
  ready.enqueued = pending.enqueued;
  // The memoized vector is the frame's lease: retransmits of a hot chunk
  // all ride the same immutable buffer, alive until the last byte of the
  // last in-flight copy is on the wire.
  const std::span<const uint8_t> view{payload->data(), payload->size()};
  ready.frame = EncodeDataZeroCopy(header, view, std::move(payload));
  if (inline_send) {
    const uint64_t wire = ready.wire;
    Status st = endpoint_->SendAsync(ready.conn, std::move(ready.frame));
    const double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - ready.enqueued)
            .count();
    if (st.ok()) {
      bytes_served_c_->Increment(chunk);
      wire_bytes_logical_c_->Increment(chunk);
      wire_bytes_wire_c_->Increment(wire);
      request_latency_ms_h_->Observe(latency_ms);
    } else {
      errors_c_->Increment();
    }
    return;
  }
  (void)ConnShardOf(pending.conn).send_queue.Push(std::move(ready));
}

void MofSupplier::PrefetchOne(const PendingRequest& pending) {
  mr::MofHandle handle;
  FetchDataHeader header;
  uint64_t disk_offset = 0;
  uint64_t chunk = 0;
  if (!ResolveRequest(pending, &handle, &header, &disk_offset, &chunk,
                      [&](const std::string& message) {
                        EnqueueError(pending.conn, pending.request, message,
                                     pending.enqueued);
                      })) {
    return;
  }
  // Wire-compression gate. A memoized compressed chunk is served straight
  // from the memo — no disk read at all. A memoized bail-out falls through
  // to the raw path with the sendfile fast path intact. A miss must read
  // the bytes first, so it takes the pooled path (sendfile can't — the
  // compressor needs the data in user space).
  bool want_compress = false;
  if (WireCompressEligible(pending, header, chunk)) {
    std::shared_ptr<const std::vector<uint8_t>> memo;
    uint32_t memo_crc = 0;
    switch (LookupCompressed(pending.request, chunk, &memo, &memo_crc)) {
      case CompressMemo::kCompressed:
        compress_cache_hits_c_->Increment();
        EnqueueCompressed(pending, header, chunk, std::move(memo), memo_crc,
                          /*inline_send=*/false);
        return;
      case CompressMemo::kIncompressible:
        compress_cache_hits_c_->Increment();
        break;
      case CompressMemo::kMiss:
        compress_cache_misses_c_->Increment();
        want_compress = true;
        break;
    }
  }
  if (!want_compress && chunk > 0 &&
      TrySendfileReply(pending, handle, header, disk_offset, chunk)) {
    return;
  }
  // DataCache buffer: bounds in-flight disk reads *and* bytes parked on
  // the socket, since the buffer now travels with the frame until the
  // transport drops its lease. Below the occupancy watermark, pool
  // exhaustion blocks here — the pipeline's natural backpressure. At or
  // above it (or when the `datacache.acquire` failpoint scripts
  // exhaustion), the wait is bounded and expiry sheds the request with
  // kErrorBusy instead of parking the disk thread (DESIGN.md §16).
  PooledBuffer buffer;
  bool exhausted = JBS_FAILPOINT("datacache.acquire").kind ==
                   failpoints::Action::Kind::kFalse;
  const double watermark = options_.admission_datacache_watermark;
  const bool watermarked =
      !exhausted && watermark > 0 &&
      static_cast<double>(data_cache_.capacity() - data_cache_.available()) >=
          watermark * static_cast<double>(data_cache_.capacity());
  if (watermarked) {
    auto got = data_cache_.AcquireFor(std::chrono::milliseconds(
        std::max(1, options_.admission_acquire_timeout_ms)));
    if (got.ok()) {
      buffer = std::move(got).value();
    } else if (got.status().code() == StatusCode::kCancelled) {
      return;  // shutting down
    } else {
      exhausted = true;
    }
  } else if (!exhausted) {
    buffer = data_cache_.Acquire();
    if (!buffer.valid()) return;  // pool cancelled: shutting down
  }
  if (exhausted) {
    shed_datacache_c_->Increment();
    size_t queued;
    {
      MutexLock lock(mu_);
      queued = queued_requests_;
    }
    SendBusy(pending.conn, pending.request, RetryAfterHintMs(queued));
    return;
  }
  if (chunk > 0) {
    Status st = PreadInto(handle, disk_offset,
                          {buffer.data(), static_cast<size_t>(chunk)});
    if (!st.ok()) {
      EnqueueError(pending.conn, pending.request, st.ToString(),
                   pending.enqueued);
      return;
    }
  }
  buffer.set_size(static_cast<size_t>(chunk));
  if (want_compress) {
    uint32_t payload_crc = 0;
    auto payload = CompressAndMemoize(
        pending.request, {buffer.data(), static_cast<size_t>(chunk)},
        &payload_crc);
    if (payload != nullptr) {
      // The pooled buffer is released here (compressed copy supersedes it).
      EnqueueCompressed(pending, header, chunk, std::move(payload),
                        payload_crc, /*inline_send=*/false);
      return;
    }
    // Bail-out: fall through and ship the bytes we already read, raw.
  }
  // CRC in the disk stage: the hash overlaps the send stage's transmits
  // the same way the reads do.
  StampChunkCrc(&header, pending.request,
                {buffer.data(), static_cast<size_t>(chunk)});
  ReadyReply ready;
  ready.conn = pending.conn;
  // Ownership handoff, not a copy: the chunk rides as the frame's `ext`
  // view and the buffer itself becomes the frame's lease, returning to
  // the DataCache only when the transport finishes with it.
  auto lease = MakeBufferLease(std::move(buffer));
  // Take the data view before std::move(lease): argument evaluation order
  // is unspecified, so reading lease.get() inline could see a moved-from
  // (null) lease.
  const std::span<const uint8_t> chunk_view{
      static_cast<const uint8_t*>(lease.get()), static_cast<size_t>(chunk)};
  ready.frame = EncodeDataZeroCopy(header, chunk_view, std::move(lease));
  ready.chunk = chunk;
  ready.wire = chunk;
  ready.enqueued = pending.enqueued;
  // Push only fails once the queue is closed (shutdown); the dropped
  // reply's lease returns the buffer via its destructor.
  (void)ConnShardOf(pending.conn).send_queue.Push(std::move(ready));
}

void MofSupplier::SendLoop(ServeShard& shard) {
  while (auto ready = shard.send_queue.Pop()) {
    if (ready->is_error) {
      endpoint_->SendAsync(ready->conn, EncodeError(ready->error));
      errors_c_->Increment();
      continue;
    }
    // The frame was encoded in the disk stage (a 32-byte owned header plus
    // a borrowed chunk view); nothing to copy here — just hand the lease
    // to the transport.
    const uint64_t chunk = ready->chunk;
    const uint64_t wire = ready->wire;
    Status st = endpoint_->SendAsync(ready->conn, std::move(ready->frame));
    const double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - ready->enqueued)
            .count();
    if (st.ok()) {
      bytes_served_c_->Increment(chunk);
      wire_bytes_logical_c_->Increment(chunk);
      wire_bytes_wire_c_->Increment(wire);
      request_latency_ms_h_->Observe(latency_ms);
    } else {
      errors_c_->Increment();
    }
  }
}

void MofSupplier::ServeInline(const PendingRequest& pending) {
  const FetchRequest& request = pending.request;
  mr::MofHandle handle;
  FetchDataHeader header;
  uint64_t disk_offset = 0;
  uint64_t chunk = 0;
  if (!ResolveRequest(pending, &handle, &header, &disk_offset, &chunk,
                      [&](const std::string& message) {
                        SendErrorNow(pending.conn, request, message);
                      })) {
    return;
  }
  // Same wire-compression gate as the pipelined path, transmitted inline.
  bool want_compress = false;
  if (WireCompressEligible(pending, header, chunk)) {
    std::shared_ptr<const std::vector<uint8_t>> memo;
    uint32_t memo_crc = 0;
    switch (LookupCompressed(request, chunk, &memo, &memo_crc)) {
      case CompressMemo::kCompressed:
        compress_cache_hits_c_->Increment();
        EnqueueCompressed(pending, header, chunk, std::move(memo), memo_crc,
                          /*inline_send=*/true);
        return;
      case CompressMemo::kIncompressible:
        compress_cache_hits_c_->Increment();
        break;
      case CompressMemo::kMiss:
        compress_cache_misses_c_->Increment();
        want_compress = true;
        break;
    }
  }
  PooledBuffer buffer = data_cache_.Acquire();
  if (!buffer.valid()) return;
  if (chunk > 0) {
    Status st = PreadInto(handle, disk_offset,
                          {buffer.data(), static_cast<size_t>(chunk)});
    if (!st.ok()) {
      SendErrorNow(pending.conn, request, st.ToString());
      return;
    }
  }
  buffer.set_size(static_cast<size_t>(chunk));
  if (want_compress) {
    uint32_t payload_crc = 0;
    auto payload = CompressAndMemoize(
        request, {buffer.data(), static_cast<size_t>(chunk)}, &payload_crc);
    if (payload != nullptr) {
      EnqueueCompressed(pending, header, chunk, std::move(payload),
                        payload_crc, /*inline_send=*/true);
      return;
    }
  }
  StampChunkCrc(&header, request,
                {buffer.data(), static_cast<size_t>(chunk)});
  // Same zero-copy handoff as the pipelined path; "serialized" here means
  // one request at a time, not extra memcpys.
  auto lease = MakeBufferLease(std::move(buffer));
  const std::span<const uint8_t> chunk_view{
      static_cast<const uint8_t*>(lease.get()), static_cast<size_t>(chunk)};
  Frame frame = EncodeDataZeroCopy(header, chunk_view, std::move(lease));
  Status st = endpoint_->SendAsync(pending.conn, std::move(frame));
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - pending.enqueued)
          .count();
  if (st.ok()) {
    bytes_served_c_->Increment(chunk);
    wire_bytes_logical_c_->Increment(chunk);
    wire_bytes_wire_c_->Increment(chunk);
    request_latency_ms_h_->Observe(latency_ms);
  } else {
    errors_c_->Increment();
  }
}

void MofSupplier::EnqueueError(net::ConnId conn, const FetchRequest& request,
                               const std::string& message,
                               std::chrono::steady_clock::time_point enqueued) {
  ReadyReply ready;
  ready.conn = conn;
  ready.is_error = true;
  ready.error.map_task = request.map_task;
  ready.error.partition = request.partition;
  ready.error.message = message;
  ready.enqueued = enqueued;
  (void)ConnShardOf(conn).send_queue.Push(std::move(ready));
}

void MofSupplier::SendBusy(net::ConnId conn, const FetchRequest& request,
                           uint32_t retry_after_ms) {
  BusyReply busy;
  busy.map_task = request.map_task;
  busy.partition = request.partition;
  busy.retry_after_ms = retry_after_ms;
  // Not an error (errors_c_ untouched): the request was shed, not failed,
  // and the per-reason shed counter was already bumped by the caller.
  endpoint_->SendAsync(conn, EncodeBusy(busy));
}

uint32_t MofSupplier::RetryAfterHintMs(size_t queued) const {
  // Backlog-proportional: an idle-ish supplier asks for a quick retry, a
  // deep queue spreads the retry storm out. Capped so a pathological
  // backlog can't park mergers for whole seconds per attempt.
  return static_cast<uint32_t>(std::min<size_t>(1000, 5 + queued));
}

void MofSupplier::SendErrorNow(net::ConnId conn, const FetchRequest& request,
                               const std::string& message) {
  FetchError error;
  error.map_task = request.map_task;
  error.partition = request.partition;
  error.message = message;
  endpoint_->SendAsync(conn, EncodeError(error));
  errors_c_->Increment();
}

}  // namespace jbs::shuffle
