#include "jbs/mof_supplier.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>

#include "common/logging.h"

namespace jbs::shuffle {

namespace {

/// pread the range into `out` (already sized).
Status PreadRange(const std::filesystem::path& path, uint64_t offset,
                  std::span<uint8_t> out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open " + path.string());
  size_t done = 0;
  Status status;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      status = IoError("pread " + path.string());
      break;
    }
    if (n == 0) {
      status = IoError("unexpected EOF in " + path.string());
      break;
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return status;
}

}  // namespace

MofSupplier::MofSupplier(Options options)
    : options_(options),
      data_cache_(options.buffer_size, options.buffer_count),
      index_cache_(options.index_cache_entries) {}

MofSupplier::~MofSupplier() { Stop(); }

Status MofSupplier::Start() {
  if (options_.transport == nullptr) {
    return InvalidArgument("MofSupplier needs a transport");
  }
  auto endpoint = options_.transport->CreateServer();
  JBS_RETURN_IF_ERROR(endpoint.status());
  endpoint_ = std::move(endpoint).value();
  net::ServerEndpoint::Handlers handlers;
  handlers.on_frame = [this](net::ConnId conn, Frame frame) {
    OnFrame(conn, std::move(frame));
  };
  JBS_RETURN_IF_ERROR(endpoint_->Start(std::move(handlers)));
  disk_thread_ = std::thread([this] { DiskLoop(); });
  return Status::Ok();
}

uint16_t MofSupplier::port() const {
  return endpoint_ ? endpoint_->port() : 0;
}

Status MofSupplier::PublishMof(const mr::MofHandle& handle) {
  std::lock_guard<std::mutex> lock(mu_);
  published_[handle.map_task] = handle;
  return Status::Ok();
}

void MofSupplier::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (disk_thread_.joinable()) disk_thread_.join();
  if (endpoint_) endpoint_->Stop();
}

mr::ShuffleServer::Stats MofSupplier::stats() const {
  Stats out;
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.requests = stats_.requests;
  out.bytes_served = stats_.bytes_served;
  return out;
}

MofSupplier::SupplierStats MofSupplier::supplier_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  SupplierStats out = stats_;
  out.index = index_cache_.stats();
  return out;
}

void MofSupplier::OnFrame(net::ConnId conn, Frame frame) {
  auto request = DecodeRequest(frame);
  if (!request) {
    JBS_WARN << "MofSupplier: undecodable frame type "
             << static_cast<int>(frame.type);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  PendingRequest pending{conn, *request, std::chrono::steady_clock::now()};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int group_key =
        options_.pipelined ? request->map_task
                           : -1;  // serialized mode: one global FIFO
    auto& queue = groups_[group_key];
    if (options_.pipelined) {
      // Order within a group by (partition, offset) so consecutive disk
      // reads walk the MOF forward.
      auto insert_at = std::find_if(
          queue.begin(), queue.end(), [&](const PendingRequest& other) {
            if (other.request.partition != request->partition) {
              return request->partition < other.request.partition;
            }
            return request->offset < other.request.offset;
          });
      queue.insert(insert_at, std::move(pending));
    } else {
      queue.push_back(std::move(pending));
    }
    // Iterators into std::map stay valid across insertions; only reset the
    // cursor if it was exhausted.
    if (rr_cursor_ == groups_.end()) rr_cursor_ = groups_.begin();
  }
  work_cv_.notify_one();
}

void MofSupplier::DiskLoop() {
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ ||
               std::any_of(groups_.begin(), groups_.end(),
                           [](const auto& kv) { return !kv.second.empty(); });
      });
      if (stopping_) return;
      // Round-robin across MOF groups: take up to prefetch_batch requests
      // from the cursor's group, then advance the cursor.
      if (rr_cursor_ == groups_.end()) rr_cursor_ = groups_.begin();
      auto start = rr_cursor_;
      while (rr_cursor_->second.empty()) {
        ++rr_cursor_;
        if (rr_cursor_ == groups_.end()) rr_cursor_ = groups_.begin();
        if (rr_cursor_ == start && rr_cursor_->second.empty()) break;
      }
      auto& queue = rr_cursor_->second;
      const int take =
          options_.pipelined ? options_.prefetch_batch : 1;
      for (int i = 0; i < take && !queue.empty(); ++i) {
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      ++rr_cursor_;
      if (rr_cursor_ == groups_.end()) rr_cursor_ = groups_.begin();
    }
    if (batch.empty()) continue;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.batches;
    }
    for (const PendingRequest& pending : batch) {
      ServeOne(pending);
    }
  }
}

void MofSupplier::ServeOne(const PendingRequest& pending) {
  const FetchRequest& request = pending.request;
  mr::MofHandle handle;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = published_.find(request.map_task);
    if (it != published_.end()) {
      handle = it->second;
      found = true;
    }
  }
  if (!found) {
    SendError(pending.conn, request, "unknown MOF");
    return;
  }
  auto index = index_cache_.GetOrLoad(handle);
  if (!index.ok()) {
    SendError(pending.conn, request, index.status().ToString());
    return;
  }
  if (request.partition < 0 || request.partition >= index->num_partitions()) {
    SendError(pending.conn, request, "partition out of range");
    return;
  }
  const mr::IndexEntry& entry = index->entry(request.partition);
  if (request.offset > entry.length) {
    SendError(pending.conn, request, "offset beyond segment");
    return;
  }
  // Chunk size: bounded by the client's ask, our transport buffer, and
  // what's left of the segment.
  const uint64_t remaining = entry.length - request.offset;
  const uint64_t chunk =
      std::min<uint64_t>({remaining, request.max_len,
                          options_.buffer_size - kDataHeaderSize});

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (last_served_mof_ != request.map_task) {
      ++stats_.group_switches;
      last_served_mof_ = request.map_task;
    }
  }

  // DataCache buffer: bounds in-flight disk reads; released after the data
  // is copied into the outgoing frame.
  PooledBuffer buffer = data_cache_.Acquire();
  if (chunk > 0) {
    Status st = PreadRange(handle.data_path,
                           entry.offset + request.offset,
                           {buffer.data(), static_cast<size_t>(chunk)});
    if (!st.ok()) {
      SendError(pending.conn, request, st.ToString());
      return;
    }
  }
  FetchDataHeader header;
  header.map_task = request.map_task;
  header.partition = request.partition;
  header.offset = request.offset;
  header.segment_total = entry.length;
  header.flags = index->compressed() ? kSegmentCompressed : 0;
  Frame frame = EncodeData(header, {buffer.data(),
                                    static_cast<size_t>(chunk)});
  buffer.Release();
  Status st = endpoint_->SendAsync(pending.conn, std::move(frame));
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - pending.enqueued)
          .count();
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (st.ok()) {
    stats_.bytes_served += chunk;
    stats_.request_latency_ms.Add(latency_ms);
  } else {
    ++stats_.errors;
  }
}

void MofSupplier::SendError(net::ConnId conn, const FetchRequest& request,
                            const std::string& message) {
  FetchError error;
  error.map_task = request.map_task;
  error.partition = request.partition;
  error.message = message;
  endpoint_->SendAsync(conn, EncodeError(error));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.errors;
}

}  // namespace jbs::shuffle
