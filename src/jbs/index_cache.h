// IndexCache (§III-B): caches parsed MOF index files so segment lookups
// don't re-read the index from disk for every fetch request.
#pragma once

#include <mutex>

#include "common/lru_cache.h"
#include "common/status.h"
#include "mapred/mof.h"

namespace jbs::shuffle {

class IndexCache {
 public:
  explicit IndexCache(size_t capacity = 1024) : cache_(capacity) {}

  /// Returns the index for `handle`, loading and caching it on a miss.
  StatusOr<mr::MofIndex> GetOrLoad(const mr::MofHandle& handle);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  Stats stats() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  LruCache<int, mr::MofIndex> cache_;  // map_task -> parsed index
  Stats stats_;
};

}  // namespace jbs::shuffle
