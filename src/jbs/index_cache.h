// IndexCache (§III-B): caches parsed MOF index files so segment lookups
// don't re-read the index from disk for every fetch request.
#pragma once

#include "common/lru_cache.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "mapred/mof.h"

namespace jbs::shuffle {

class IndexCache {
 public:
  explicit IndexCache(size_t capacity = 1024) : cache_(capacity) {}

  /// Returns the index for `handle`, loading and caching it on a miss.
  StatusOr<mr::MofIndex> GetOrLoad(const mr::MofHandle& handle) EXCLUDES(mu_);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  Stats stats() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // map_task -> parsed index
  LruCache<int, mr::MofIndex> cache_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace jbs::shuffle
