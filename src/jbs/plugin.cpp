#include "jbs/plugin.h"

namespace jbs::shuffle {

JbsShufflePlugin::JbsShufflePlugin(Options options) : options_(options) {
  switch (options_.transport) {
    case TransportKind::kTcp: {
      net::TcpTransportOptions topts;
      topts.max_frame_bytes = options_.max_frame_bytes;
      topts.engine = options_.engine;
      topts.num_loops = options_.transport_loops;
      transport_ = net::MakeTcpTransport(topts);
      break;
    }
    case TransportKind::kRdma: {
      net::RdmaTransportOptions ropts;
      ropts.buffer_size = options_.buffer_size;
      ropts.max_message_bytes = options_.max_frame_bytes;
      transport_ = net::MakeSoftRdmaTransport(ropts);
      break;
    }
  }
}

JbsShufflePlugin::Options JbsShufflePlugin::OptionsFromConfig(
    const Config& conf) {
  Options options;
  options.transport = conf.GetOr("jbs.transport", "tcp") == "rdma"
                          ? TransportKind::kRdma
                          : TransportKind::kTcp;
  options.buffer_size = static_cast<size_t>(
      conf.GetSize(conf::kTransportBufferSize, 128 * 1024));
  options.buffer_count = static_cast<size_t>(
      conf.GetInt(conf::kTransportBufferCount, 64));
  options.data_threads =
      static_cast<int>(conf.GetInt(conf::kNetMergerDataThreads, 3));
  options.prefetch_batch =
      static_cast<int>(conf.GetInt(conf::kPrefetchBatch, 4));
  options.prefetch_threads =
      static_cast<int>(conf.GetInt(conf::kPrefetchThreads, 2));
  options.fd_cache_entries =
      static_cast<size_t>(conf.GetInt(conf::kFdCacheEntries, 128));
  options.fetch_window =
      static_cast<int>(conf.GetInt(conf::kFetchWindow, 4));
  options.connection_cache_capacity = static_cast<size_t>(
      conf.GetInt(conf::kConnectionCacheCapacity, 512));
  options.pipelined = conf.GetBool("jbs.mofsupplier.pipelined", true);
  options.merge_fan_in =
      static_cast<size_t>(conf.GetInt("jbs.netmerger.merge.fanin", 0));
  options.consolidate = conf.GetBool("jbs.netmerger.consolidate", true);
  options.round_robin = conf.GetBool("jbs.netmerger.roundrobin", true);
  options.fetch_deadline_ms = conf.GetInt(conf::kFetchDeadlineMs, 0);
  options.connect_timeout_ms = conf.GetInt(conf::kConnectTimeoutMs, 0);
  options.chunk_timeout_ms = conf.GetInt(conf::kChunkTimeoutMs, 0);
  options.connection_idle_ms = conf.GetInt(conf::kConnectionIdleMs, 0);
  options.chunk_crc = conf.GetBool(conf::kVerifyCrc, true);
  options.verify_crc = options.chunk_crc;
  options.crc_cache_entries =
      static_cast<size_t>(conf.GetInt(conf::kCrcCacheEntries, 4096));
  options.health_suspect_after =
      static_cast<int>(conf.GetInt(conf::kHealthSuspectAfter, 1));
  options.health_penalize_after =
      static_cast<int>(conf.GetInt(conf::kHealthPenalizeAfter, 3));
  options.health_penalty_ms = conf.GetInt(conf::kHealthPenaltyMs, 200);
  options.health_penalty_max_ms =
      conf.GetInt(conf::kHealthPenaltyMaxMs, 10000);
  options.sendfile_min_bytes =
      static_cast<uint64_t>(conf.GetSize(conf::kSendfileMinBytes, 0));
  options.max_frame_bytes = static_cast<size_t>(
      conf.GetSize(conf::kMaxFrameBytes, 64 * 1024 * 1024));
  options.wire_compress = conf.GetBool(conf::kWireCompressEnabled, false);
  options.wire_compress_min_bytes = static_cast<uint64_t>(
      conf.GetSize(conf::kWireCompressMinBytes, 4096));
  options.wire_compress_min_ratio =
      conf.GetDouble(conf::kWireCompressMinRatio, 0.9);
  options.compress_cache_entries =
      static_cast<size_t>(conf.GetInt(conf::kCompressCacheEntries, 1024));
  options.admission_max_queue =
      static_cast<size_t>(conf.GetInt(conf::kAdmissionMaxQueue, 0));
  options.admission_max_inflight_bytes = static_cast<uint64_t>(
      conf.GetSize(conf::kAdmissionMaxInflightBytes, 0));
  options.admission_datacache_watermark =
      conf.GetDouble(conf::kAdmissionDataCacheWatermark, 0);
  options.admission_acquire_timeout_ms =
      static_cast<int>(conf.GetInt(conf::kAdmissionAcquireTimeoutMs, 100));
  options.pushback_retry_budget =
      static_cast<int>(conf.GetInt(conf::kPushbackRetryBudget, 32));
  options.engine =
      net::ParseEngine(conf.GetOr(conf::kTransportEngine, "epoll"));
  options.transport_loops =
      static_cast<int>(conf.GetInt(conf::kTransportLoops, 1));
  options.serve_shards =
      static_cast<int>(conf.GetInt(conf::kServeShards, 1));
  return options;
}

std::string JbsShufflePlugin::name() const {
  return options_.transport == TransportKind::kRdma ? "jbs-rdma" : "jbs-tcp";
}

std::unique_ptr<mr::ShuffleServer> JbsShufflePlugin::CreateServer(
    int node, const Config& /*conf*/) {
  MofSupplier::Options sopts;
  sopts.transport = transport_.get();
  sopts.metrics = &metrics_;
  sopts.instance = "node" + std::to_string(node);
  sopts.buffer_size = options_.buffer_size;
  sopts.buffer_count = options_.buffer_count;
  sopts.prefetch_batch = options_.prefetch_batch;
  sopts.prefetch_threads = options_.prefetch_threads;
  sopts.fd_cache_entries = options_.fd_cache_entries;
  sopts.pipelined = options_.pipelined;
  sopts.chunk_crc = options_.chunk_crc;
  sopts.crc_cache_entries = options_.crc_cache_entries;
  sopts.sendfile_min_bytes = options_.sendfile_min_bytes;
  sopts.wire_compress = options_.wire_compress;
  sopts.wire_compress_min_bytes = options_.wire_compress_min_bytes;
  sopts.wire_compress_min_ratio = options_.wire_compress_min_ratio;
  sopts.compress_cache_entries = options_.compress_cache_entries;
  sopts.serve_shards = options_.serve_shards;
  sopts.admission_max_queue = options_.admission_max_queue;
  sopts.admission_max_inflight_bytes = options_.admission_max_inflight_bytes;
  sopts.admission_datacache_watermark = options_.admission_datacache_watermark;
  sopts.admission_acquire_timeout_ms = options_.admission_acquire_timeout_ms;
  return std::make_unique<MofSupplier>(sopts);
}

std::unique_ptr<mr::ShuffleClient> JbsShufflePlugin::CreateClient(
    int node, const Config& /*conf*/) {
  NetMerger::Options nopts;
  nopts.transport = transport_.get();
  nopts.metrics = &metrics_;
  nopts.trace = &trace_;
  nopts.instance = "node" + std::to_string(node);
  nopts.data_threads = options_.data_threads;
  nopts.chunk_size = options_.buffer_size - kDataHeaderSize;
  nopts.fetch_window = options_.fetch_window;
  nopts.connection_cache_capacity = options_.connection_cache_capacity;
  nopts.consolidate = options_.consolidate;
  nopts.round_robin = options_.round_robin;
  nopts.merge_fan_in = options_.merge_fan_in;
  nopts.fetch_deadline_ms = options_.fetch_deadline_ms;
  nopts.connect_timeout_ms = options_.connect_timeout_ms;
  nopts.chunk_timeout_ms = options_.chunk_timeout_ms;
  nopts.connection_idle_ms = options_.connection_idle_ms;
  nopts.verify_crc = options_.verify_crc;
  nopts.advertise_wire_compress = options_.wire_compress;
  nopts.health_suspect_after = options_.health_suspect_after;
  nopts.health_penalize_after = options_.health_penalize_after;
  nopts.health_penalty_ms = options_.health_penalty_ms;
  nopts.health_penalty_max_ms = options_.health_penalty_max_ms;
  nopts.pushback_retry_budget = options_.pushback_retry_budget;
  return std::make_unique<NetMerger>(nopts);
}

}  // namespace jbs::shuffle
