// JBS fetch wire protocol. A fetch conversation moves one MOF segment in
// transport-buffer-sized chunks:
//
//   client -> server : kFetchRequest {map_task, partition, offset, max_len}
//   server -> client : kFetchData    {map_task, partition, offset,
//                                     segment_total, flags, data bytes}
//   server -> client : kFetchError   {map_task, partition, message}
//
// Chunking to the transport buffer size is what makes the protocol work
// unchanged over the verbs backend (pre-posted receive buffers) and what
// Fig. 11 sweeps.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/framing.h"

namespace jbs::shuffle {

enum FrameType : uint8_t {
  kFetchRequest = 1,
  kFetchData = 2,
  kFetchError = 3,
  kHello = 4,
  kErrorBusy = 5,
};

/// Highest protocol version this build speaks. Version 1 (implicit — no
/// hello frame) is the PR 6 wire format; version 2 adds the hello
/// capability advertisement and per-chunk wire compression.
inline constexpr uint32_t kProtocolVersion = 2;

/// Hello capability bit: the client can decompress kChunkCompressed
/// payloads, so the supplier may compress eligible chunks for this
/// connection.
inline constexpr uint32_t kCapWireCompression = 1u << 0;

/// One-way capability advertisement, sent by the client as the first frame
/// after dialing. There is no reply — the fetch conversation stays a strict
/// request/response alternation — and the server treats its absence (old
/// client, dropped frame) as "no capabilities": it just serves raw chunks.
/// Servers older than version 2 log-and-ignore the unknown frame type, so
/// the handshake is backward compatible in both directions.
struct Hello {
  uint32_t version = kProtocolVersion;
  uint32_t caps = 0;  // kCapWireCompression etc.
};

struct FetchRequest {
  int32_t map_task = 0;
  int32_t partition = 0;
  uint64_t offset = 0;   // into the segment
  uint32_t max_len = 0;  // server returns at most this many bytes
};

/// FetchDataHeader flag: segment bytes are block-compressed.
inline constexpr uint32_t kSegmentCompressed = 1u << 0;
/// FetchDataHeader flag: `crc32` carries a per-chunk checksum covering the
/// header fields and the payload (see ChunkWireCrc). Suppliers always set
/// it; a client that doesn't verify just ignores the field.
inline constexpr uint32_t kChunkHasCrc = 1u << 1;
/// FetchDataHeader flag: this chunk's payload is a Compress() stream of the
/// logical chunk bytes. `offset` and `segment_total` stay in logical
/// (decompressed) coordinates; only the payload on the wire shrinks. The
/// chunk CRC folds over the *compressed* payload, so the client verifies
/// integrity before paying for decompression. Only set for clients that
/// advertised kCapWireCompression.
inline constexpr uint32_t kChunkCompressed = 1u << 2;

struct FetchDataHeader {
  int32_t map_task = 0;
  int32_t partition = 0;
  uint64_t offset = 0;
  uint64_t segment_total = 0;  // full segment length, lets the client plan
  uint32_t flags = 0;          // kSegmentCompressed etc.
  uint32_t crc32 = 0;          // per-chunk checksum (kChunkHasCrc)
};

struct FetchError {
  int32_t map_task = 0;
  int32_t partition = 0;
  std::string message;
};

/// Overload pushback (DESIGN.md §16): the supplier shed this request
/// instead of queueing it — its admission queue, inflight-byte budget, or
/// DataCache is saturated. Not a failure: the segment exists and the server
/// is healthy, just busy. Clients retry the same server after roughly
/// `retry_after_ms` (plus jitter); pushback must not count against node
/// health, trigger failover-replica promotion, or be treated as corruption.
struct BusyReply {
  int32_t map_task = 0;
  int32_t partition = 0;
  uint32_t retry_after_ms = 0;  // server's backlog-derived retry hint
};

Frame EncodeRequest(const FetchRequest& request);
std::optional<FetchRequest> DecodeRequest(const Frame& frame);

Frame EncodeHello(const Hello& hello);
std::optional<Hello> DecodeHello(const Frame& frame);

/// Builds a data frame: header followed by `data`. Copies `data` into the
/// frame's owned payload (counted by PayloadCopyBytes) — the serve path
/// uses the zero-copy variants below instead.
Frame EncodeData(const FetchDataHeader& header, std::span<const uint8_t> data);

/// Zero-copy data frame: the owned payload is just the 32-byte header; the
/// chunk bytes ride as the frame's borrowed `ext` view, kept alive by
/// `lease` until the transport has put the last byte on the wire.
/// `data` must point into the leased storage (e.g. a PooledBuffer wrapped
/// by MakeBufferLease).
Frame EncodeDataZeroCopy(const FetchDataHeader& header,
                         std::span<const uint8_t> data,
                         std::shared_ptr<const void> lease);

/// Sendfile data frame: the chunk bytes come straight from `fd` at
/// `offset` (a MOF file kept open by `fd_lease`, e.g. an FdCache handle).
/// Transports without file-segment support Flatten() it — correct, but
/// the copy is counted.
Frame EncodeDataFile(const FetchDataHeader& header, int fd, uint64_t offset,
                     uint64_t length, std::shared_ptr<const void> fd_lease);

/// Decodes header; `data` is set to the payload bytes after it (view into
/// the frame's payload).
std::optional<FetchDataHeader> DecodeData(const Frame& frame,
                                          std::span<const uint8_t>* data);

Frame EncodeError(const FetchError& error);
std::optional<FetchError> DecodeError(const Frame& frame);

Frame EncodeBusy(const BusyReply& busy);
std::optional<BusyReply> DecodeBusy(const Frame& frame);

/// The chunk checksum: CRC32 over the payload bytes folded with the header
/// fields (everything except the crc field itself), so a bit flip anywhere
/// in the frame — including `segment_total`, which would silently truncate
/// or inflate the client's reassembly — is detected, not just payload
/// damage. `data_crc` is Crc32 over the payload alone; suppliers cache it
/// per chunk so a retransmit doesn't re-hash the data, and only the cheap
/// 28-byte header fold is paid per send.
uint32_t ChunkWireCrc(const FetchDataHeader& header, uint32_t data_crc);

/// Wire size of the data-frame header, for sizing chunk payloads.
inline constexpr size_t kDataHeaderSize = 4 + 4 + 8 + 8 + 4 + 4;

}  // namespace jbs::shuffle
