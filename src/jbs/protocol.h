// JBS fetch wire protocol. A fetch conversation moves one MOF segment in
// transport-buffer-sized chunks:
//
//   client -> server : kFetchRequest {map_task, partition, offset, max_len}
//   server -> client : kFetchData    {map_task, partition, offset,
//                                     segment_total, flags, data bytes}
//   server -> client : kFetchError   {map_task, partition, message}
//
// Chunking to the transport buffer size is what makes the protocol work
// unchanged over the verbs backend (pre-posted receive buffers) and what
// Fig. 11 sweeps.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/framing.h"

namespace jbs::shuffle {

enum FrameType : uint8_t {
  kFetchRequest = 1,
  kFetchData = 2,
  kFetchError = 3,
};

struct FetchRequest {
  int32_t map_task = 0;
  int32_t partition = 0;
  uint64_t offset = 0;   // into the segment
  uint32_t max_len = 0;  // server returns at most this many bytes
};

/// FetchDataHeader flag: segment bytes are block-compressed.
inline constexpr uint32_t kSegmentCompressed = 1u << 0;

struct FetchDataHeader {
  int32_t map_task = 0;
  int32_t partition = 0;
  uint64_t offset = 0;
  uint64_t segment_total = 0;  // full segment length, lets the client plan
  uint32_t flags = 0;          // kSegmentCompressed etc.
};

struct FetchError {
  int32_t map_task = 0;
  int32_t partition = 0;
  std::string message;
};

Frame EncodeRequest(const FetchRequest& request);
std::optional<FetchRequest> DecodeRequest(const Frame& frame);

/// Builds a data frame: header followed by `data`.
Frame EncodeData(const FetchDataHeader& header, std::span<const uint8_t> data);

/// Decodes header; `data` is set to the payload bytes after it (view into
/// the frame's payload).
std::optional<FetchDataHeader> DecodeData(const Frame& frame,
                                          std::span<const uint8_t>* data);

Frame EncodeError(const FetchError& error);
std::optional<FetchError> DecodeError(const Frame& frame);

/// Wire size of the data-frame header, for sizing chunk payloads.
inline constexpr size_t kDataHeaderSize = 4 + 4 + 8 + 8 + 4;

}  // namespace jbs::shuffle
