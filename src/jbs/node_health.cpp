#include "jbs/node_health.h"

#include <algorithm>

namespace jbs::shuffle {

NodeHealthTracker::NodeHealthTracker(Options options, MetricsRegistry* metrics,
                                     MetricLabels base_labels)
    : options_(options),
      metrics_(metrics),
      base_labels_(std::move(base_labels)),
      penalties_c_(metrics_->GetCounter("jbs_netmerger_penalties_total",
                                        base_labels_)) {}

NodeHealthTracker::Node& NodeHealthTracker::GetNode(const std::string& node) {
  auto [it, inserted] = nodes_.try_emplace(node);
  if (inserted) {
    MetricLabels labels = base_labels_;
    labels.emplace_back("node", node);
    it->second.gauge =
        metrics_->GetGauge("jbs_netmerger_node_health", std::move(labels));
  }
  return it->second;
}

void NodeHealthTracker::SetState(Node& entry, NodeState state) {
  entry.state = state;
  entry.gauge->Set(static_cast<double>(static_cast<int>(state)));
}

void NodeHealthTracker::Refresh(Node& entry) {
  if (entry.state == NodeState::kPenalized &&
      std::chrono::steady_clock::now() >= entry.release) {
    // Sentence served: out on probation. The failure streak stays, so the
    // next failure re-penalizes immediately with a doubled sentence, while
    // one success clears everything.
    SetState(entry, NodeState::kSuspect);
  }
}

bool NodeHealthTracker::RecordFailure(const std::string& node, Failure kind) {
  (void)kind;  // all kinds weigh equally today; the trace carries the why
  MutexLock lock(mu_);
  Node& entry = GetNode(node);
  Refresh(entry);
  ++entry.consecutive_failures;
  if (options_.penalize_after > 0 &&
      entry.consecutive_failures >= options_.penalize_after &&
      entry.state != NodeState::kPenalized) {
    int64_t sentence = options_.penalty_ms
                       << std::min(entry.penalty_level, 10);
    if (options_.penalty_max_ms > 0) {
      sentence = std::min(sentence, options_.penalty_max_ms);
    }
    ++entry.penalty_level;
    entry.release = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(sentence);
    SetState(entry, NodeState::kPenalized);
    penalties_c_->Increment();
    return true;
  }
  if (entry.state == NodeState::kHealthy &&
      entry.consecutive_failures >= std::max(1, options_.suspect_after)) {
    SetState(entry, NodeState::kSuspect);
  }
  return false;
}

void NodeHealthTracker::RecordSuccess(const std::string& node) {
  MutexLock lock(mu_);
  Node& entry = GetNode(node);
  entry.consecutive_failures = 0;
  entry.penalty_level = 0;
  SetState(entry, NodeState::kHealthy);
}

NodeState NodeHealthTracker::state(const std::string& node) {
  MutexLock lock(mu_);
  Node& entry = GetNode(node);
  Refresh(entry);
  return entry.state;
}

std::optional<std::chrono::steady_clock::time_point>
NodeHealthTracker::earliest_release() {
  MutexLock lock(mu_);
  std::optional<std::chrono::steady_clock::time_point> earliest;
  for (auto& [key, entry] : nodes_) {
    Refresh(entry);
    if (entry.state != NodeState::kPenalized) continue;
    if (!earliest || entry.release < *earliest) earliest = entry.release;
  }
  return earliest;
}

}  // namespace jbs::shuffle
