// Map-side output collector: buffers emitted (partition, key, value)
// triples, sorts by (partition, key), spills to disk when the sort buffer
// fills, and merges all spills into the task's final MOF + index file.
// Runs the optional combiner on each spill and on the final merge, exactly
// where Hadoop runs it.
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "common/status.h"
#include "mapred/api.h"
#include "mapred/mof.h"
#include "mapred/types.h"

namespace jbs::mr {

class MapOutputCollector final : public Emitter {
 public:
  struct Options {
    int num_partitions = 1;
    std::shared_ptr<Partitioner> partitioner;
    size_t sort_buffer_bytes = 64 << 20;  // io.sort.mb analogue
    std::filesystem::path work_dir;       // spill + final MOF directory
    CombineFn combiner;                   // optional
    bool compress = false;  // compress final MOF segments
                            // (mapred.compress.map.output); spills stay
                            // raw since they are merged locally anyway
  };

  explicit MapOutputCollector(Options options);

  /// Emitter interface used by the user map function.
  void Emit(std::string_view key, std::string_view value) override;

  /// Sorts/spills what remains, merges spills, writes the final MOF.
  StatusOr<MofHandle> Finish(int map_task, int node);

  uint64_t records_collected() const { return records_; }
  uint64_t bytes_collected() const { return bytes_; }
  int spills() const { return spill_count_; }
  const Status& status() const { return status_; }

 private:
  struct Entry {
    int partition;
    Record record;
  };

  /// Sorts buffer_ and writes one spill file (a mini-MOF); clears buffer_.
  void SpillBuffer();

  /// Applies the combiner to a sorted run of same-partition records.
  std::vector<Record> CombineRun(std::vector<Record> run) const;

  Options options_;
  std::vector<Entry> buffer_;
  size_t buffered_bytes_ = 0;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
  int spill_count_ = 0;
  std::vector<MofHandle> spill_handles_;
  Status status_;
};

}  // namespace jbs::mr
