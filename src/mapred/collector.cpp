#include "mapred/collector.h"

#include <algorithm>

#include "common/compress.h"
#include "common/logging.h"
#include "mapred/ifile.h"
#include "mapred/merger.h"

namespace jbs::mr {

MapOutputCollector::MapOutputCollector(Options options)
    : options_(std::move(options)) {
  if (!options_.partitioner) {
    options_.partitioner = std::make_shared<HashPartitioner>();
  }
  std::filesystem::create_directories(options_.work_dir);
}

void MapOutputCollector::Emit(std::string_view key, std::string_view value) {
  if (!status_.ok()) return;
  const int partition =
      options_.partitioner->Partition(key, options_.num_partitions);
  buffered_bytes_ += key.size() + value.size() + 16;
  bytes_ += key.size() + value.size();
  ++records_;
  buffer_.push_back(
      Entry{partition, Record{std::string(key), std::string(value)}});
  if (buffered_bytes_ >= options_.sort_buffer_bytes) {
    SpillBuffer();
  }
}

std::vector<Record> MapOutputCollector::CombineRun(
    std::vector<Record> run) const {
  if (!options_.combiner) return run;
  std::vector<Record> combined;
  class VectorEmitter final : public Emitter {
   public:
    explicit VectorEmitter(std::vector<Record>* out) : out_(out) {}
    void Emit(std::string_view key, std::string_view value) override {
      out_->push_back({std::string(key), std::string(value)});
    }

   private:
    std::vector<Record>* out_;
  } emitter(&combined);

  size_t i = 0;
  std::vector<std::string> values;
  while (i < run.size()) {
    const std::string& key = run[i].key;
    values.clear();
    size_t j = i;
    while (j < run.size() && run[j].key == key) {
      values.push_back(std::move(run[j].value));
      ++j;
    }
    options_.combiner(key, values, emitter);
    i = j;
  }
  return combined;
}

void MapOutputCollector::SpillBuffer() {
  if (buffer_.empty()) return;
  std::stable_sort(buffer_.begin(), buffer_.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.partition != b.partition) {
                       return a.partition < b.partition;
                     }
                     return a.record.key < b.record.key;
                   });
  const auto spill_base =
      options_.work_dir / ("spill_" + std::to_string(spill_count_));
  MofWriter writer(spill_base);
  size_t i = 0;
  for (int partition = 0; partition < options_.num_partitions; ++partition) {
    std::vector<Record> run;
    while (i < buffer_.size() && buffer_[i].partition == partition) {
      run.push_back(std::move(buffer_[i].record));
      ++i;
    }
    run = CombineRun(std::move(run));
    IFileWriter segment;
    for (const Record& record : run) segment.Append(record);
    const uint64_t records = segment.records();
    Status st = writer.AppendSegment(segment.Finish(), records);
    if (!st.ok()) {
      status_ = st;
      return;
    }
  }
  auto handle = writer.Finish(/*map_task=*/spill_count_, /*node=*/0);
  if (!handle.ok()) {
    status_ = handle.status();
    return;
  }
  spill_handles_.push_back(std::move(handle).value());
  ++spill_count_;
  buffer_.clear();
  buffered_bytes_ = 0;
}

StatusOr<MofHandle> MapOutputCollector::Finish(int map_task, int node) {
  if (!status_.ok()) return status_;
  SpillBuffer();
  if (!status_.ok()) return status_;

  const auto final_base =
      options_.work_dir / ("mof_" + std::to_string(map_task));
  const uint32_t mof_flags = options_.compress ? kMofCompressed : 0;
  const auto encode = [&](std::vector<uint8_t> segment) {
    return options_.compress ? jbs::Compress(segment) : std::move(segment);
  };

  if (spill_handles_.empty()) {
    // Emitted nothing: final MOF with empty segments.
    MofWriter writer(final_base, mof_flags);
    for (int p = 0; p < options_.num_partitions; ++p) {
      IFileWriter empty;
      JBS_RETURN_IF_ERROR(writer.AppendSegment(encode(empty.Finish()), 0));
    }
    return writer.Finish(map_task, node);
  }

  if (spill_handles_.size() == 1 && !options_.compress) {
    // Single spill: rename into place (the common case Hadoop optimizes).
    const MofHandle& spill = spill_handles_.front();
    MofHandle handle;
    handle.map_task = map_task;
    handle.node = node;
    handle.data_path = MofWriter::DataPath(final_base);
    handle.index_path = MofWriter::IndexPath(final_base);
    std::error_code ec;
    std::filesystem::rename(spill.data_path, handle.data_path, ec);
    if (ec) return IoError("rename spill data: " + ec.message());
    std::filesystem::rename(spill.index_path, handle.index_path, ec);
    if (ec) return IoError("rename spill index: " + ec.message());
    return handle;
  }

  // Multi-spill (or compressing): per-partition k-way merge of all spills.
  std::vector<MofReader> readers;
  readers.reserve(spill_handles_.size());
  for (const MofHandle& spill : spill_handles_) {
    auto reader = MofReader::Open(spill);
    JBS_RETURN_IF_ERROR(reader.status());
    readers.push_back(std::move(reader).value());
  }
  MofWriter writer(final_base, mof_flags);
  for (int partition = 0; partition < options_.num_partitions; ++partition) {
    std::vector<std::unique_ptr<RecordStream>> streams;
    for (const MofReader& reader : readers) {
      std::vector<uint8_t> segment;
      JBS_RETURN_IF_ERROR(reader.ReadSegment(partition, segment));
      streams.push_back(std::make_unique<SegmentStream>(std::move(segment)));
    }
    KWayMerger merged(std::move(streams));
    // Re-run the combiner across spills so equal keys from different
    // spills collapse (matches Hadoop's merge-time combine).
    IFileWriter segment_out;
    if (options_.combiner) {
      GroupIterator groups(&merged);
      std::string key;
      std::vector<std::string> values;
      class SegmentEmitter final : public Emitter {
       public:
        explicit SegmentEmitter(IFileWriter* out) : out_(out) {}
        void Emit(std::string_view k, std::string_view v) override {
          out_->Append(k, v);
        }

       private:
        IFileWriter* out_;
      } emitter(&segment_out);
      while (groups.NextGroup(&key, &values)) {
        options_.combiner(key, values, emitter);
      }
      JBS_RETURN_IF_ERROR(groups.status());
    } else {
      Record record;
      while (merged.Next(&record)) segment_out.Append(record);
      JBS_RETURN_IF_ERROR(merged.status());
    }
    const uint64_t records = segment_out.records();
    JBS_RETURN_IF_ERROR(
        writer.AppendSegment(encode(segment_out.Finish()), records));
  }
  // Clean up spills.
  for (const MofHandle& spill : spill_handles_) {
    std::error_code ec;
    std::filesystem::remove(spill.data_path, ec);
    std::filesystem::remove(spill.index_path, ec);
  }
  return writer.Finish(map_task, node);
}

}  // namespace jbs::mr
