#include "mapred/ifile.h"

#include <cassert>

#include "common/bytes.h"

namespace jbs::mr {

void IFileWriter::Append(const Record& record) {
  Append(record.key, record.value);
}

void IFileWriter::Append(std::string_view key, std::string_view value) {
  assert(!finished_);
  PutVarint64(buffer_, static_cast<int64_t>(key.size()));
  PutVarint64(buffer_, static_cast<int64_t>(value.size()));
  buffer_.insert(buffer_.end(), key.begin(), key.end());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
  ++records_;
}

std::vector<uint8_t> IFileWriter::Finish() {
  assert(!finished_);
  finished_ = true;
  PutVarint64(buffer_, -1);
  PutVarint64(buffer_, -1);
  const uint32_t crc = Crc32(buffer_);
  PutU32(buffer_, crc);
  return std::move(buffer_);
}

bool IFileReader::Next(Record* record) {
  if (done_ || !status_.ok()) return false;
  auto key_len = GetVarint64(data_, &offset_);
  auto value_len = GetVarint64(data_, &offset_);
  if (!key_len || !value_len) {
    status_ = IoError("truncated IFile segment header");
    return false;
  }
  if (*key_len == -1 && *value_len == -1) {
    done_ = true;
    return false;
  }
  if (*key_len < 0 || *value_len < 0 ||
      offset_ + static_cast<uint64_t>(*key_len) +
              static_cast<uint64_t>(*value_len) >
          data_.size()) {
    status_ = IoError("corrupt IFile record lengths");
    return false;
  }
  record->key.assign(reinterpret_cast<const char*>(data_.data() + offset_),
                     static_cast<size_t>(*key_len));
  offset_ += static_cast<size_t>(*key_len);
  record->value.assign(reinterpret_cast<const char*>(data_.data() + offset_),
                       static_cast<size_t>(*value_len));
  offset_ += static_cast<size_t>(*value_len);
  ++records_read_;
  return true;
}

Status IFileReader::VerifyChecksum() const {
  if (data_.size() < 4) return IoError("segment shorter than trailer");
  const uint32_t stored = GetU32(data_.data() + data_.size() - 4);
  const uint32_t computed = Crc32(data_.first(data_.size() - 4));
  if (stored != computed) {
    return IoError("IFile checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace jbs::mr
