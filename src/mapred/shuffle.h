// The shuffle plug-in boundary. The engine is transport-agnostic: it talks
// to a ShuffleServer per node (serves that node's MOFs) and a ShuffleClient
// per node (fetches + merges segments for that node's reducers). The
// baseline HTTP shuffle, the JBS MOFSupplier/NetMerger pair, and an
// in-process LocalShuffle all implement this interface — mirroring
// Hadoop's pluggable shuffle (MAPREDUCE-4049) that the paper ships JBS as.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "mapred/merger.h"
#include "mapred/mof.h"

namespace jbs::mr {

/// Where one map task's MOF can be fetched from.
struct MofLocation {
  int map_task = 0;
  int node = 0;
  std::string host;
  uint16_t port = 0;
};

class ShuffleServer {
 public:
  virtual ~ShuffleServer() = default;

  /// Binds and starts serving. Must be callable before any PublishMof.
  virtual Status Start() = 0;

  /// Port clients should connect to (0 for in-process servers).
  virtual uint16_t port() const = 0;

  /// Makes a completed MOF fetchable by (map_task, partition).
  virtual Status PublishMof(const MofHandle& handle) = 0;

  virtual void Stop() = 0;

  struct Stats {
    uint64_t requests = 0;
    uint64_t bytes_served = 0;
  };
  virtual Stats stats() const { return {}; }
};

class ShuffleClient {
 public:
  virtual ~ShuffleClient() = default;

  /// Fetches segment `partition` from every source and returns one merged,
  /// sorted record stream (ownership to the caller). Implementations decide
  /// how much is materialized vs. streamed — that difference *is* the paper.
  virtual StatusOr<std::unique_ptr<RecordStream>> FetchAndMerge(
      int partition, const std::vector<MofLocation>& sources) = 0;

  /// Stops the client and drains: every FetchAndMerge call blocked at the
  /// time of the call — including ones waiting on an unresponsive peer —
  /// must return promptly (with kUnavailable), and later calls fail fast.
  /// Stop() must not wait for in-flight network conversations to finish.
  virtual void Stop() {}

  struct Stats {
    uint64_t fetches = 0;
    uint64_t bytes_fetched = 0;
    uint64_t connections_opened = 0;
  };
  virtual Stats stats() const { return {}; }
};

/// Factory bound to one "cluster" run; create one server/client per node.
class ShufflePlugin {
 public:
  virtual ~ShufflePlugin() = default;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<ShuffleServer> CreateServer(int node,
                                                      const Config& conf) = 0;
  virtual std::unique_ptr<ShuffleClient> CreateClient(int node,
                                                      const Config& conf) = 0;
};

}  // namespace jbs::mr
