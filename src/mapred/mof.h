// Map Output File (MOF) and its Index file — the on-disk contract between
// the map side and the shuffle (§II-A). One MOF holds one IFile segment per
// reduce partition; the index file records where each segment lives so a
// server can answer "give me partition p of map m" with one lookup
// (optionally through the IndexCache) and one ranged read.
//
// Index file layout:
//   u32 magic 'MOFI' | u32 flags | u32 num_partitions
//   per partition: u64 offset | u64 length | u64 records
//
// flags bit 0 (kMofCompressed): segments are Compress()ed IFile data;
// length is the on-disk (compressed) size.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapred/types.h"

namespace jbs::mr {

struct IndexEntry {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t records = 0;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

/// Segments are block-compressed (common/compress.h).
inline constexpr uint32_t kMofCompressed = 1u << 0;

class MofIndex {
 public:
  MofIndex() = default;
  explicit MofIndex(std::vector<IndexEntry> entries, uint32_t flags = 0)
      : entries_(std::move(entries)), flags_(flags) {}

  static StatusOr<MofIndex> Parse(std::span<const uint8_t> data);
  static StatusOr<MofIndex> Load(const std::filesystem::path& path);

  std::vector<uint8_t> Serialize() const;
  Status Save(const std::filesystem::path& path) const;

  int num_partitions() const { return static_cast<int>(entries_.size()); }
  const IndexEntry& entry(int partition) const {
    return entries_[static_cast<size_t>(partition)];
  }
  const std::vector<IndexEntry>& entries() const { return entries_; }
  uint64_t total_bytes() const;
  uint32_t flags() const { return flags_; }
  bool compressed() const { return (flags_ & kMofCompressed) != 0; }

 private:
  std::vector<IndexEntry> entries_;
  uint32_t flags_ = 0;
};

/// Identifies a finished MOF on disk.
struct MofHandle {
  int map_task = 0;
  int node = 0;  // logical node that produced it
  std::filesystem::path data_path;
  std::filesystem::path index_path;
};

/// Writes a MOF from per-partition finished IFile segments.
class MofWriter {
 public:
  /// `base` is the path prefix; writes base.data and base.index. `flags`
  /// (e.g. kMofCompressed) describe how the caller encoded the segments.
  explicit MofWriter(std::filesystem::path base, uint32_t flags = 0)
      : base_(std::move(base)), flags_(flags) {}

  /// Appends the next partition's finished segment (order = partition id).
  Status AppendSegment(std::span<const uint8_t> segment, uint64_t records);

  /// Flushes the index; returns the handle. Writer must not be reused.
  StatusOr<MofHandle> Finish(int map_task, int node);

  static std::filesystem::path DataPath(const std::filesystem::path& base) {
    return base.string() + ".data";
  }
  static std::filesystem::path IndexPath(const std::filesystem::path& base) {
    return base.string() + ".index";
  }

 private:
  std::filesystem::path base_;
  uint32_t flags_ = 0;
  std::vector<IndexEntry> entries_;
  uint64_t bytes_written_ = 0;
  bool opened_ = false;
  bool finished_ = false;
};

/// Ranged reads of MOF segments (what a shuffle server does per request).
class MofReader {
 public:
  static StatusOr<MofReader> Open(const MofHandle& handle);

  /// Reads the full segment for `partition` into `out`.
  Status ReadSegment(int partition, std::vector<uint8_t>& out) const;

  /// Reads `length` bytes of `partition`'s segment starting at
  /// `segment_offset` — the unit of transfer-buffer-sized fetches.
  Status ReadSegmentRange(int partition, uint64_t segment_offset,
                          uint64_t length, std::vector<uint8_t>& out) const;

  const MofIndex& index() const { return index_; }
  const MofHandle& handle() const { return handle_; }

 private:
  MofReader(MofHandle handle, MofIndex index)
      : handle_(std::move(handle)), index_(std::move(index)) {}

  MofHandle handle_;
  MofIndex index_;
};

}  // namespace jbs::mr
