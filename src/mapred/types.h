// Core MapReduce value types. Keys and values are binary-safe byte strings
// ordered bytewise (Hadoop's BytesWritable comparator).
#pragma once

#include <cstdint>
#include <string>

namespace jbs::mr {

struct Record {
  std::string key;
  std::string value;

  friend bool operator==(const Record&, const Record&) = default;
};

/// Bytewise comparison used for map-side sort and reduce-side merge.
inline bool KeyLess(const std::string& a, const std::string& b) {
  return a < b;
}

struct TaskAttemptId {
  int job = 0;
  int task = 0;     // map or reduce index
  bool is_map = true;

  std::string ToString() const {
    return "attempt_j" + std::to_string(job) + (is_map ? "_m" : "_r") +
           std::to_string(task);
  }
  friend bool operator==(const TaskAttemptId&, const TaskAttemptId&) = default;
};

}  // namespace jbs::mr
