#include "mapred/engine.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "mapred/collector.h"

namespace jbs::mr {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

LocalJobRunner::LocalJobRunner(Options options) : options_(std::move(options)) {
  std::filesystem::create_directories(options_.work_dir);
}

std::vector<LocalJobRunner::MapAssignment> LocalJobRunner::AssignMaps(
    const std::vector<hdfs::InputSplit>& splits, uint64_t* local_maps) {
  std::vector<MapAssignment> assignments;
  assignments.reserve(splits.size());
  std::vector<int> load(static_cast<size_t>(options_.num_nodes), 0);
  int map_task = 0;
  for (const hdfs::InputSplit& split : splits) {
    // Prefer the least-loaded node that holds the split locally; fall back
    // to the globally least-loaded node (a rough cut of delay scheduling,
    // which achieves ~98% local maps in practice).
    int chosen = -1;
    for (int host : split.hosts) {
      if (host < 0 || host >= options_.num_nodes) continue;
      if (chosen == -1 ||
          load[static_cast<size_t>(host)] < load[static_cast<size_t>(chosen)]) {
        chosen = host;
      }
    }
    if (chosen != -1) ++*local_maps;
    if (chosen == -1) {
      chosen = 0;
      for (int node = 1; node < options_.num_nodes; ++node) {
        if (load[static_cast<size_t>(node)] <
            load[static_cast<size_t>(chosen)]) {
          chosen = node;
        }
      }
    }
    ++load[static_cast<size_t>(chosen)];
    assignments.push_back(MapAssignment{map_task++, chosen, split});
  }
  return assignments;
}

Status LocalJobRunner::ForEachInputRecord(
    const JobSpec& spec, const hdfs::InputSplit& split,
    const std::function<void(std::string_view, std::string_view)>& fn,
    uint64_t* records) {
  switch (spec.input_format) {
    case InputFormat::kLines: {
      // Hadoop TextInputFormat semantics: a split owns every line that
      // *starts* within it. Unless it begins at offset 0 it skips the
      // first (partial) line, and it reads past its end to finish the
      // last line it started.
      auto file = options_.dfs->Stat(split.path);
      JBS_RETURN_IF_ERROR(file.status());
      constexpr uint64_t kMaxLine = 1 << 20;
      const uint64_t read_end =
          std::min<uint64_t>(file->length, split.offset + split.length + kMaxLine);
      std::vector<uint8_t> data;
      JBS_RETURN_IF_ERROR(options_.dfs->ReadRange(
          split.path, split.offset, read_end - split.offset, data));
      std::string_view text(reinterpret_cast<const char*>(data.data()),
                            data.size());
      size_t pos = 0;
      if (split.offset != 0) {
        const size_t newline = text.find('\n');
        if (newline == std::string_view::npos) return Status::Ok();
        pos = newline + 1;
      }
      // Consume lines that start within [0, split.length).
      while (pos < text.size() &&
             split.offset + pos < split.offset + split.length) {
        size_t newline = text.find('\n', pos);
        if (newline == std::string_view::npos) {
          if (read_end < file->length) {
            return Internal("line longer than 1MB in " + split.path);
          }
          newline = text.size();
        }
        const std::string key = std::to_string(split.offset + pos);
        fn(key, text.substr(pos, newline - pos));
        ++*records;
        pos = newline + 1;
      }
      return Status::Ok();
    }
    case InputFormat::kFixedRecords: {
      const auto rec = static_cast<uint64_t>(spec.fixed_record_size);
      // Own the records that *start* within the split, aligned globally.
      const uint64_t first =
          (split.offset + rec - 1) / rec * rec;
      auto file = options_.dfs->Stat(split.path);
      JBS_RETURN_IF_ERROR(file.status());
      const uint64_t limit = std::min<uint64_t>(
          file->length / rec * rec, split.offset + split.length);
      if (first >= limit) return Status::Ok();
      // Last owned record may extend past the split end.
      const uint64_t last_start = (limit - 1) / rec * rec;
      const uint64_t read_len = last_start + rec - first;
      std::vector<uint8_t> data;
      JBS_RETURN_IF_ERROR(
          options_.dfs->ReadRange(split.path, first, read_len, data));
      const char* base = reinterpret_cast<const char*>(data.data());
      for (uint64_t off = 0; off + rec <= data.size(); off += rec) {
        std::string_view key(base + off,
                             static_cast<size_t>(spec.fixed_key_size));
        std::string_view value(base + off + spec.fixed_key_size,
                               rec - static_cast<uint64_t>(spec.fixed_key_size));
        fn(key, value);
        ++*records;
      }
      return Status::Ok();
    }
  }
  return Internal("unknown input format");
}

Status LocalJobRunner::RunMapTask(const JobSpec& spec,
                                  const MapAssignment& assignment,
                                  ShuffleServer* server,
                                  JobCounters* counters) {
  MapOutputCollector::Options copts;
  copts.num_partitions = spec.num_reducers;
  copts.partitioner = spec.partitioner;
  copts.sort_buffer_bytes = options_.sort_buffer_bytes;
  copts.work_dir = options_.work_dir /
                   ("node" + std::to_string(assignment.node)) /
                   ("map_" + std::to_string(assignment.map_task));
  copts.combiner = spec.combine;
  copts.compress = options_.conf.GetBool(conf::kCompressMapOutput, false);
  MapOutputCollector collector(copts);

  uint64_t input_records = 0;
  JBS_RETURN_IF_ERROR(ForEachInputRecord(
      spec, assignment.split,
      [&](std::string_view key, std::string_view value) {
        spec.map(key, value, collector);
      },
      &input_records));
  JBS_RETURN_IF_ERROR(collector.status());

  auto handle = collector.Finish(assignment.map_task, assignment.node);
  JBS_RETURN_IF_ERROR(handle.status());
  JBS_RETURN_IF_ERROR(server->PublishMof(*handle));

  MutexLock lock(counters_mu_);
  counters->map_input_records += input_records;
  counters->map_output_records += collector.records_collected();
  counters->map_output_bytes += collector.bytes_collected();
  counters->map_spills += static_cast<uint64_t>(collector.spills());
  return Status::Ok();
}

Status LocalJobRunner::RunReduceTask(const JobSpec& spec, int reduce_task,
                                     int node, ShuffleClient* client,
                                     const std::vector<MofLocation>& sources,
                                     JobCounters* counters) {
  auto merged = client->FetchAndMerge(reduce_task, sources);
  JBS_RETURN_IF_ERROR(merged.status());

  const std::string out_path =
      spec.output_dir + "/part-r-" + std::to_string(reduce_task);
  auto writer = options_.dfs->Create(out_path, /*preferred_node=*/node);
  JBS_RETURN_IF_ERROR(writer.status());

  uint64_t input_records = 0;
  uint64_t output_records = 0;
  class DfsEmitter final : public Emitter {
   public:
    DfsEmitter(hdfs::MiniDfs::Writer* writer, OutputFormat format,
               uint64_t* count)
        : writer_(writer), format_(format), count_(count) {}
    void Emit(std::string_view key, std::string_view value) override {
      buffer_.clear();
      switch (format_) {
        case OutputFormat::kKeyTabValue:
          buffer_.append(key).append("\t").append(value).append("\n");
          break;
        case OutputFormat::kRaw:
          buffer_.append(key).append(value);
          break;
        case OutputFormat::kValueOnly:
          buffer_.append(value).append("\n");
          break;
      }
      status_ = writer_->Append(
          {reinterpret_cast<const uint8_t*>(buffer_.data()), buffer_.size()});
      ++*count_;
    }
    const Status& status() const { return status_; }

   private:
    hdfs::MiniDfs::Writer* writer_;
    OutputFormat format_;
    uint64_t* count_;
    std::string buffer_;
    Status status_;
  } emitter(&*writer, options_.output_format, &output_records);

  GroupIterator groups(merged->get());
  std::string key;
  std::vector<std::string> values;
  while (groups.NextGroup(&key, &values)) {
    input_records += values.size();
    spec.reduce(key, values, emitter);
    JBS_RETURN_IF_ERROR(emitter.status());
  }
  JBS_RETURN_IF_ERROR(groups.status());
  JBS_RETURN_IF_ERROR(writer->Close());

  MutexLock lock(counters_mu_);
  counters->reduce_input_records += input_records;
  counters->reduce_output_records += output_records;
  counters->output_files.push_back(out_path);
  return Status::Ok();
}

StatusOr<JobCounters> LocalJobRunner::Run(const JobSpec& spec) {
  if (options_.dfs == nullptr || options_.plugin == nullptr) {
    return InvalidArgument("LocalJobRunner needs a dfs and a shuffle plugin");
  }
  if (!spec.map || !spec.reduce || spec.num_reducers < 1) {
    return InvalidArgument("JobSpec incomplete");
  }
  const auto job_start = std::chrono::steady_clock::now();
  JobCounters counters;

  auto splits = options_.dfs->GetSplits(
      spec.input_path,
      options_.split_size == 0 ? options_.dfs->block_size()
                               : options_.split_size);
  JBS_RETURN_IF_ERROR(splits.status());
  counters.map_tasks = splits->size();
  counters.reduce_tasks = static_cast<uint64_t>(spec.num_reducers);

  // Per-node shuffle servers and clients.
  std::vector<std::unique_ptr<ShuffleServer>> servers;
  std::vector<std::unique_ptr<ShuffleClient>> clients;
  for (int node = 0; node < options_.num_nodes; ++node) {
    servers.push_back(options_.plugin->CreateServer(node, options_.conf));
    JBS_RETURN_IF_ERROR(servers.back()->Start());
  }
  for (int node = 0; node < options_.num_nodes; ++node) {
    clients.push_back(options_.plugin->CreateClient(node, options_.conf));
  }
  auto stop_all = [&] {
    for (auto& client : clients) client->Stop();
    for (auto& server : servers) server->Stop();
  };

  auto assignments = AssignMaps(*splits, &counters.local_maps);

  // ---- Map phase ----
  Mutex status_mu;
  Status first_error;
  auto record_error = [&](const Status& st) {
    MutexLock lock(status_mu);
    if (first_error.ok() && !st.ok()) first_error = st;
  };
  {
    ThreadPool pool(
        static_cast<size_t>(options_.num_nodes * options_.map_slots),
        "map-slots");
    for (const MapAssignment& assignment : assignments) {
      pool.Submit([&, assignment] {
        // Task-level fault tolerance: re-execute a failed attempt, like
        // the JobTracker rescheduling a TaskAttempt.
        Status st;
        for (int attempt = 0; attempt < options_.max_task_attempts;
             ++attempt) {
          if (attempt > 0) {
            MutexLock lock(counters_mu_);
            ++counters.task_retries;
          }
          st = RunMapTask(spec, assignment,
                          servers[static_cast<size_t>(assignment.node)].get(),
                          &counters);
          if (st.ok()) break;
          JBS_WARN << "map task " << assignment.map_task << " attempt "
                   << attempt << " failed: " << st.ToString();
        }
        record_error(st);
      });
    }
    pool.Shutdown();
  }
  if (!first_error.ok()) {
    stop_all();
    return first_error;
  }
  counters.map_phase_sec = SecondsSince(job_start);

  // ---- Shuffle + reduce phase ----
  // Every reducer fetches from every map's node-local server.
  std::vector<MofLocation> sources;
  sources.reserve(assignments.size());
  for (const MapAssignment& assignment : assignments) {
    MofLocation loc;
    loc.map_task = assignment.map_task;
    loc.node = assignment.node;
    loc.host = "127.0.0.1";
    loc.port = servers[static_cast<size_t>(assignment.node)]->port();
    sources.push_back(loc);
  }
  const auto reduce_start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(
        static_cast<size_t>(options_.num_nodes * options_.reduce_slots),
        "reduce-slots");
    for (int r = 0; r < spec.num_reducers; ++r) {
      const int node = r % options_.num_nodes;
      pool.Submit([&, r, node] {
        Status st;
        for (int attempt = 0; attempt < options_.max_task_attempts;
             ++attempt) {
          if (attempt > 0) {
            {
              MutexLock lock(counters_mu_);
              ++counters.task_retries;
            }
            // A fresh attempt rewrites its output file.
            (void)options_.dfs->Delete(spec.output_dir + "/part-r-" +
                                       std::to_string(r));
          }
          st = RunReduceTask(spec, r, node,
                             clients[static_cast<size_t>(node)].get(),
                             sources, &counters);
          if (st.ok()) break;
          JBS_WARN << "reduce task " << r << " attempt " << attempt
                   << " failed: " << st.ToString();
        }
        record_error(st);
      });
    }
    pool.Shutdown();
  }
  stop_all();
  if (!first_error.ok()) return first_error;

  for (const auto& client : clients) {
    counters.shuffle_bytes += client->stats().bytes_fetched;
  }
  counters.reduce_phase_sec = SecondsSince(reduce_start);
  counters.total_sec = SecondsSince(job_start);
  std::sort(counters.output_files.begin(), counters.output_files.end());
  JBS_INFO << "job '" << spec.name << "' done: " << counters.map_tasks
           << " maps, " << counters.reduce_tasks << " reducers, "
           << counters.total_sec << "s";
  return counters;
}

}  // namespace jbs::mr
