#include "mapred/merger.h"

#include "common/compress.h"

namespace jbs::mr {

std::unique_ptr<RecordStream> HierarchicalMerge(
    std::vector<std::unique_ptr<RecordStream>> inputs, size_t fan_in) {
  if (fan_in < 2) fan_in = 2;
  while (inputs.size() > fan_in) {
    std::vector<std::unique_ptr<RecordStream>> next_level;
    next_level.reserve(inputs.size() / fan_in + 1);
    for (size_t begin = 0; begin < inputs.size(); begin += fan_in) {
      const size_t end = std::min(begin + fan_in, inputs.size());
      std::vector<std::unique_ptr<RecordStream>> group;
      group.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        group.push_back(std::move(inputs[i]));
      }
      // Materialize the intermediate run (in memory — the levitated
      // property is preserved; only the stream count shrinks).
      KWayMerger merger(std::move(group));
      std::vector<Record> run;
      Record record;
      while (merger.Next(&record)) run.push_back(std::move(record));
      if (!merger.status().ok()) {
        // Surface the error through a stream that reports it.
        class ErrorStream final : public RecordStream {
         public:
          explicit ErrorStream(Status status) : status_(std::move(status)) {}
          bool Next(Record*) override { return false; }
          const Status& status() const override { return status_; }

         private:
          Status status_;
        };
        std::vector<std::unique_ptr<RecordStream>> error_only;
        error_only.push_back(
            std::make_unique<ErrorStream>(merger.status()));
        return std::make_unique<KWayMerger>(std::move(error_only));
      }
      next_level.push_back(std::make_unique<VectorStream>(std::move(run)));
    }
    inputs = std::move(next_level);
  }
  return std::make_unique<KWayMerger>(std::move(inputs));
}

StatusOr<std::unique_ptr<RecordStream>> OpenSegment(
    std::vector<uint8_t> segment, bool compressed) {
  if (compressed) {
    // Flag/payload cross-check: a segment flagged compressed that doesn't
    // even start with the codec header means the flag and the bytes
    // disagree — a supplier-side mixup or header corruption, which
    // deserves a distinct verdict rather than Decompress's generic "not a
    // compressed stream".
    if (!LooksCompressed(segment)) {
      return IoError(
          "segment flagged compressed but payload has no codec header "
          "(kSegmentCompressed flag/payload mismatch)");
    }
    auto raw = Decompress(segment);
    JBS_RETURN_IF_ERROR(raw.status());
    return std::unique_ptr<RecordStream>(
        std::make_unique<SegmentStream>(std::move(raw).value()));
  }
  if (LooksCompressed(segment)) {
    // The inverse mismatch: an unflagged segment that *looks* compressed.
    // A legitimate raw IFile can start with the codec magic by chance, so
    // disambiguate with the IFile trailer CRC — real record data passes,
    // while mislabeled compressed bytes fail essentially always. Without
    // this check the compressed bytes would be merged as records.
    if (!IFileReader(segment).VerifyChecksum().ok()) {
      return IoError(
          "segment not flagged compressed but payload is a codec stream, "
          "not a valid IFile (kSegmentCompressed flag/payload mismatch)");
    }
  }
  return std::unique_ptr<RecordStream>(
      std::make_unique<SegmentStream>(std::move(segment)));
}

KWayMerger::KWayMerger(std::vector<std::unique_ptr<RecordStream>> inputs)
    : inputs_(std::move(inputs)) {}

bool KWayMerger::Refill(size_t source) {
  Record record;
  if (inputs_[source]->Next(&record)) {
    heap_.push({std::move(record), source});
    return true;
  }
  if (!inputs_[source]->status().ok()) {
    status_ = inputs_[source]->status();
  }
  return false;
}

bool KWayMerger::Next(Record* record) {
  if (!status_.ok()) return false;
  if (!primed_) {
    primed_ = true;
    for (size_t i = 0; i < inputs_.size(); ++i) {
      Refill(i);
      if (!status_.ok()) return false;
    }
  }
  if (heap_.empty()) return false;
  const HeapItem& top = heap_.top();
  *record = top.record;
  const size_t source = top.source;
  heap_.pop();
  Refill(source);
  return status_.ok();
}

bool GroupIterator::NextGroup(std::string* key,
                              std::vector<std::string>* values) {
  values->clear();
  if (exhausted_) return false;
  if (!have_lookahead_) {
    if (!stream_->Next(&lookahead_)) {
      exhausted_ = true;
      return false;
    }
    have_lookahead_ = true;
  }
  *key = lookahead_.key;
  values->push_back(std::move(lookahead_.value));
  have_lookahead_ = false;
  Record record;
  while (stream_->Next(&record)) {
    if (record.key != *key) {
      lookahead_ = std::move(record);
      have_lookahead_ = true;
      return true;
    }
    values->push_back(std::move(record.value));
  }
  exhausted_ = true;
  return true;
}

}  // namespace jbs::mr
