// IFile-style segment record format (the layout inside one MOF partition
// segment):
//
//   repeat: varint(key_len) varint(value_len) key value
//   end:    varint(-1) varint(-1)
//   trailer: u32 crc32 over everything before the trailer
//
// Matches Hadoop's IFile in spirit: self-delimiting records, an explicit
// EOF marker so a truncated segment is detectable, and a checksum.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapred/types.h"

namespace jbs::mr {

/// Serializes records into an in-memory IFile segment.
class IFileWriter {
 public:
  IFileWriter() = default;

  void Append(const Record& record);
  void Append(std::string_view key, std::string_view value);

  /// Writes the EOF marker + checksum and returns the completed segment.
  /// The writer must not be reused afterwards.
  std::vector<uint8_t> Finish();

  uint64_t records() const { return records_; }
  /// Bytes written so far (excluding the trailer-to-come).
  size_t bytes() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
  uint64_t records_ = 0;
  bool finished_ = false;
};

/// Streaming reader over a complete IFile segment.
class IFileReader {
 public:
  explicit IFileReader(std::span<const uint8_t> segment)
      : data_(segment) {}

  /// Reads the next record. Returns false at the EOF marker. Sets a failed
  /// status() on malformed input.
  bool Next(Record* record);

  /// Validates the trailer checksum of the whole segment up front.
  Status VerifyChecksum() const;

  const Status& status() const { return status_; }
  uint64_t records_read() const { return records_read_; }

 private:
  std::span<const uint8_t> data_;
  size_t offset_ = 0;
  bool done_ = false;
  Status status_;
  uint64_t records_read_ = 0;
};

}  // namespace jbs::mr
