// In-process shuffle: the client reads MOF segments straight from disk via
// a shared registry, no sockets. Serves three purposes: engine tests that
// don't want a network, an upper-bound reference ("zero transport cost")
// for benches, and a worked example of the plug-in interface.
#pragma once

#include <map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "mapred/shuffle.h"

namespace jbs::mr {

class LocalMofRegistry {
 public:
  Status Publish(const MofHandle& handle) EXCLUDES(mu_);
  StatusOr<MofHandle> Lookup(int map_task) const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<int, MofHandle> mofs_ GUARDED_BY(mu_);  // map_task -> handle
};

class LocalShufflePlugin final : public ShufflePlugin {
 public:
  LocalShufflePlugin() = default;

  std::string name() const override { return "local"; }
  std::unique_ptr<ShuffleServer> CreateServer(int node,
                                              const Config& conf) override;
  std::unique_ptr<ShuffleClient> CreateClient(int node,
                                              const Config& conf) override;

  LocalMofRegistry& registry() { return registry_; }

 private:
  LocalMofRegistry registry_;
};

}  // namespace jbs::mr
