#include "mapred/mof.h"

#include <fstream>

#include "common/bytes.h"

namespace jbs::mr {

namespace {
constexpr uint32_t kIndexMagic = 0x4D4F4649;  // 'MOFI'
}

StatusOr<MofIndex> MofIndex::Parse(std::span<const uint8_t> data) {
  if (data.size() < 12) return IoError("index too short");
  if (GetU32(data.data()) != kIndexMagic) return IoError("bad index magic");
  const uint32_t index_flags = GetU32(data.data() + 4);
  const uint32_t partitions = GetU32(data.data() + 8);
  const size_t expected = 12 + static_cast<size_t>(partitions) * 24;
  if (data.size() != expected) return IoError("index size mismatch");
  std::vector<IndexEntry> entries;
  entries.reserve(partitions);
  const uint8_t* p = data.data() + 12;
  for (uint32_t i = 0; i < partitions; ++i, p += 24) {
    entries.push_back({GetU64(p), GetU64(p + 8), GetU64(p + 16)});
  }
  return MofIndex(std::move(entries), index_flags);
}

StatusOr<MofIndex> MofIndex::Load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return IoError("cannot open index " + path.string());
  const auto size = static_cast<size_t>(in.tellg());
  std::vector<uint8_t> data(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in) return IoError("short read of index " + path.string());
  return Parse(data);
}

std::vector<uint8_t> MofIndex::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(12 + entries_.size() * 24);
  PutU32(out, kIndexMagic);
  PutU32(out, flags_);
  PutU32(out, static_cast<uint32_t>(entries_.size()));
  for (const IndexEntry& entry : entries_) {
    PutU64(out, entry.offset);
    PutU64(out, entry.length);
    PutU64(out, entry.records);
  }
  return out;
}

Status MofIndex::Save(const std::filesystem::path& path) const {
  const auto data = Serialize();
  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot create index " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return IoError("short write of index " + path.string());
  return Status::Ok();
}

uint64_t MofIndex::total_bytes() const {
  uint64_t total = 0;
  for (const IndexEntry& entry : entries_) total += entry.length;
  return total;
}

Status MofWriter::AppendSegment(std::span<const uint8_t> segment,
                                uint64_t records) {
  if (finished_) return Internal("append after finish");
  const auto mode = opened_ ? std::ios::binary | std::ios::app
                            : std::ios::binary | std::ios::trunc;
  std::ofstream out(DataPath(base_), mode);
  if (!out) return IoError("cannot open MOF " + DataPath(base_).string());
  opened_ = true;
  out.write(reinterpret_cast<const char*>(segment.data()),
            static_cast<std::streamsize>(segment.size()));
  if (!out) return IoError("short write to MOF");
  entries_.push_back({bytes_written_, segment.size(), records});
  bytes_written_ += segment.size();
  return Status::Ok();
}

StatusOr<MofHandle> MofWriter::Finish(int map_task, int node) {
  if (finished_) return Internal("double finish");
  finished_ = true;
  if (!opened_) {
    // A map task may legitimately emit nothing; still create the file so
    // the server side has something to stat.
    std::ofstream out(DataPath(base_), std::ios::binary | std::ios::trunc);
    if (!out) return IoError("cannot create empty MOF");
  }
  MofIndex index(std::move(entries_), flags_);
  JBS_RETURN_IF_ERROR(index.Save(IndexPath(base_)));
  MofHandle handle;
  handle.map_task = map_task;
  handle.node = node;
  handle.data_path = DataPath(base_);
  handle.index_path = IndexPath(base_);
  return handle;
}

StatusOr<MofReader> MofReader::Open(const MofHandle& handle) {
  auto index = MofIndex::Load(handle.index_path);
  JBS_RETURN_IF_ERROR(index.status());
  return MofReader(handle, std::move(index).value());
}

Status MofReader::ReadSegment(int partition, std::vector<uint8_t>& out) const {
  if (partition < 0 || partition >= index_.num_partitions()) {
    return InvalidArgument("partition out of range");
  }
  const IndexEntry& entry = index_.entry(partition);
  return ReadSegmentRange(partition, 0, entry.length, out);
}

Status MofReader::ReadSegmentRange(int partition, uint64_t segment_offset,
                                   uint64_t length,
                                   std::vector<uint8_t>& out) const {
  if (partition < 0 || partition >= index_.num_partitions()) {
    return InvalidArgument("partition out of range");
  }
  const IndexEntry& entry = index_.entry(partition);
  if (segment_offset + length > entry.length) {
    return InvalidArgument("segment range beyond segment length");
  }
  std::ifstream in(handle_.data_path, std::ios::binary);
  if (!in) return IoError("cannot open MOF " + handle_.data_path.string());
  in.seekg(static_cast<std::streamoff>(entry.offset + segment_offset));
  out.resize(static_cast<size_t>(length));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(length));
  if (static_cast<uint64_t>(in.gcount()) != length) {
    return IoError("short segment read");
  }
  return Status::Ok();
}

}  // namespace jbs::mr
