// Public user-facing MapReduce API: the map and reduce interfaces the paper
// deliberately leaves untouched ("without changing the user programming
// interfaces such as the user-defined map and reduce functions", §III-A).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "mapred/types.h"

namespace jbs::mr {

/// Receives (key, value) pairs emitted by map or reduce functions.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(std::string_view key, std::string_view value) = 0;
};

/// User map function: one call per input record.
using MapFn =
    std::function<void(std::string_view key, std::string_view value,
                       Emitter& out)>;

/// User reduce function: one call per key group.
using ReduceFn = std::function<void(
    const std::string& key, const std::vector<std::string>& values,
    Emitter& out)>;

/// Optional combiner, same shape as reduce, run on map-side spills.
using CombineFn = ReduceFn;

/// Maps a key to a reduce partition.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual int Partition(std::string_view key, int num_partitions) const = 0;
};

/// Hadoop's default: hash(key) mod R.
class HashPartitioner final : public Partitioner {
 public:
  int Partition(std::string_view key, int num_partitions) const override {
    // CRC as a stable, platform-independent hash.
    const uint32_t h = Crc32(
        {reinterpret_cast<const uint8_t*>(key.data()), key.size()});
    return static_cast<int>(h % static_cast<uint32_t>(num_partitions));
  }
};

/// Range partitioner over sampled split points (Terasort's partitioner:
/// keeps reduce outputs globally sorted).
class RangePartitioner final : public Partitioner {
 public:
  /// `split_points` must be sorted; partition i gets keys in
  /// [split_points[i-1], split_points[i]).
  explicit RangePartitioner(std::vector<std::string> split_points)
      : split_points_(std::move(split_points)) {}

  int Partition(std::string_view key, int num_partitions) const override;

  /// Chooses R-1 split points from a sample of keys.
  static std::vector<std::string> SelectSplitPoints(
      std::vector<std::string> sample, int num_partitions);

 private:
  std::vector<std::string> split_points_;
};

/// How an input split's bytes become (key, value) records for map calls.
enum class InputFormat {
  kLines,        // key = byte offset (decimal), value = line text
  kFixedRecords, // fixed-size records; key = first key_width bytes
};

struct JobSpec {
  std::string name = "job";
  std::string input_path;         // MiniDFS path
  std::string output_dir;         // MiniDFS path prefix for part-r-* files
  MapFn map;
  ReduceFn reduce;
  CombineFn combine;              // optional
  std::shared_ptr<Partitioner> partitioner =
      std::make_shared<HashPartitioner>();
  int num_reducers = 1;
  InputFormat input_format = InputFormat::kLines;
  int fixed_record_size = 100;    // for kFixedRecords (Terasort layout)
  int fixed_key_size = 10;
};

}  // namespace jbs::mr
