// LocalJobRunner: a miniature Hadoop runtime driving real jobs on real
// bytes in one process. Logical nodes each get map/reduce slots, a shuffle
// server, and a shuffle client; task placement honours split locality
// (HDFS-style) and reducers are assigned round-robin. The shuffle itself is
// whatever ShufflePlugin is injected — that is the JBS plug-in boundary.
#pragma once

#include <filesystem>

#include "common/config.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "hdfs/minidfs.h"
#include "mapred/api.h"
#include "mapred/shuffle.h"

namespace jbs::mr {

/// How reduce output is rendered into the DFS output file.
enum class OutputFormat {
  kKeyTabValue,  // "key\tvalue\n" text lines
  kRaw,          // key bytes then value bytes, no separators (Terasort)
  kValueOnly,    // "value\n" (inverted index style listings)
};

struct JobCounters {
  uint64_t map_tasks = 0;
  uint64_t reduce_tasks = 0;
  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;
  uint64_t map_spills = 0;
  uint64_t reduce_input_records = 0;
  uint64_t reduce_output_records = 0;
  uint64_t task_retries = 0;  // failed attempts that were re-executed
  uint64_t shuffle_bytes = 0;
  uint64_t local_maps = 0;  // maps scheduled on a node holding their split
  double map_phase_sec = 0;
  double reduce_phase_sec = 0;
  double total_sec = 0;
  std::vector<std::string> output_files;
};

class LocalJobRunner {
 public:
  struct Options {
    hdfs::MiniDfs* dfs = nullptr;         // required
    ShufflePlugin* plugin = nullptr;      // required
    std::filesystem::path work_dir;       // intermediate data root
    int num_nodes = 1;
    int map_slots = 4;                    // per node (paper: 4)
    int reduce_slots = 2;                 // per node (paper: 2)
    uint64_t split_size = 0;              // 0 = DFS block size
    size_t sort_buffer_bytes = 16 << 20;
    OutputFormat output_format = OutputFormat::kKeyTabValue;
    int max_task_attempts = 2;  // mapred.map/reduce.max.attempts analogue
    Config conf;
  };

  explicit LocalJobRunner(Options options);

  /// Runs one job to completion. Thread-safe against nothing: one job at a
  /// time per runner (matching JobTracker serialization per job).
  StatusOr<JobCounters> Run(const JobSpec& spec);

 private:
  struct MapAssignment {
    int map_task;
    int node;
    hdfs::InputSplit split;
  };

  /// Locality-aware split->node assignment (delay-scheduling flavoured).
  std::vector<MapAssignment> AssignMaps(
      const std::vector<hdfs::InputSplit>& splits, uint64_t* local_maps);

  Status RunMapTask(const JobSpec& spec, const MapAssignment& assignment,
                    ShuffleServer* server, JobCounters* counters)
      EXCLUDES(counters_mu_);
  Status RunReduceTask(const JobSpec& spec, int reduce_task, int node,
                       ShuffleClient* client,
                       const std::vector<MofLocation>& sources,
                       JobCounters* counters) EXCLUDES(counters_mu_);

  /// Parses split bytes into (key,value) map inputs per the input format.
  Status ForEachInputRecord(
      const JobSpec& spec, const hdfs::InputSplit& split,
      const std::function<void(std::string_view, std::string_view)>& fn,
      uint64_t* records);

  Options options_;
  // Guards the JobCounters object a Run() call threads through the task
  // runners (a per-call local, so it cannot carry GUARDED_BY itself).
  Mutex counters_mu_;
};

}  // namespace jbs::mr
