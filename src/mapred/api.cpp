#include "mapred/api.h"

#include <algorithm>

namespace jbs::mr {

int RangePartitioner::Partition(std::string_view key,
                                int num_partitions) const {
  // upper_bound over split points: number of points <= key.
  const auto it = std::upper_bound(split_points_.begin(), split_points_.end(),
                                   key, [](std::string_view k,
                                           const std::string& point) {
                                     return k < point;
                                   });
  const int partition =
      static_cast<int>(std::distance(split_points_.begin(), it));
  return std::min(partition, num_partitions - 1);
}

std::vector<std::string> RangePartitioner::SelectSplitPoints(
    std::vector<std::string> sample, int num_partitions) {
  std::sort(sample.begin(), sample.end());
  std::vector<std::string> points;
  if (num_partitions <= 1 || sample.empty()) return points;
  points.reserve(static_cast<size_t>(num_partitions) - 1);
  for (int i = 1; i < num_partitions; ++i) {
    const size_t index = sample.size() * static_cast<size_t>(i) /
                         static_cast<size_t>(num_partitions);
    points.push_back(sample[index]);
  }
  return points;
}

}  // namespace jbs::mr
