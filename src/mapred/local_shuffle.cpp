#include "mapred/local_shuffle.h"

namespace jbs::mr {

Status LocalMofRegistry::Publish(const MofHandle& handle) {
  MutexLock lock(mu_);
  mofs_[handle.map_task] = handle;
  return Status::Ok();
}

StatusOr<MofHandle> LocalMofRegistry::Lookup(int map_task) const {
  MutexLock lock(mu_);
  auto it = mofs_.find(map_task);
  if (it == mofs_.end()) {
    return NotFound("MOF for map task " + std::to_string(map_task));
  }
  return it->second;
}

size_t LocalMofRegistry::size() const {
  MutexLock lock(mu_);
  return mofs_.size();
}

namespace {

class LocalServer final : public ShuffleServer {
 public:
  explicit LocalServer(LocalMofRegistry* registry) : registry_(registry) {}

  Status Start() override { return Status::Ok(); }
  uint16_t port() const override { return 0; }
  Status PublishMof(const MofHandle& handle) override {
    return registry_->Publish(handle);
  }
  void Stop() override {}

 private:
  LocalMofRegistry* registry_;
};

class LocalClient final : public ShuffleClient {
 public:
  explicit LocalClient(LocalMofRegistry* registry) : registry_(registry) {}

  StatusOr<std::unique_ptr<RecordStream>> FetchAndMerge(
      int partition, const std::vector<MofLocation>& sources) override {
    std::vector<std::unique_ptr<RecordStream>> streams;
    streams.reserve(sources.size());
    MutexLock lock(mu_);
    for (const MofLocation& source : sources) {
      auto handle = registry_->Lookup(source.map_task);
      JBS_RETURN_IF_ERROR(handle.status());
      auto reader = MofReader::Open(*handle);
      JBS_RETURN_IF_ERROR(reader.status());
      std::vector<uint8_t> segment;
      JBS_RETURN_IF_ERROR(reader->ReadSegment(partition, segment));
      stats_.bytes_fetched += segment.size();
      ++stats_.fetches;
      auto stream =
          OpenSegment(std::move(segment), reader->index().compressed());
      JBS_RETURN_IF_ERROR(stream.status());
      streams.push_back(std::move(stream).value());
    }
    return std::unique_ptr<RecordStream>(
        std::make_unique<KWayMerger>(std::move(streams)));
  }

  Stats stats() const override {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  LocalMofRegistry* registry_;
  mutable Mutex mu_;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace

std::unique_ptr<ShuffleServer> LocalShufflePlugin::CreateServer(
    int /*node*/, const Config& /*conf*/) {
  return std::make_unique<LocalServer>(&registry_);
}

std::unique_ptr<ShuffleClient> LocalShufflePlugin::CreateClient(
    int /*node*/, const Config& /*conf*/) {
  return std::make_unique<LocalClient>(&registry_);
}

}  // namespace jbs::mr
