// K-way merge machinery shared by the map-side spill merge, the baseline
// reduce merge, and the JBS NetMerger's network-levitated merge. A
// RecordStream is any sorted (key,value) iterator; KWayMerger merges many
// of them with a binary heap; GroupIterator turns the merged stream into
// (key, values...) groups for the reduce function.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "common/status.h"
#include "mapred/ifile.h"
#include "mapred/types.h"

namespace jbs::mr {

/// Abstract sorted record stream.
class RecordStream {
 public:
  virtual ~RecordStream() = default;
  /// Advances to the next record; false at end-of-stream or on error
  /// (check status()).
  virtual bool Next(Record* record) = 0;
  virtual const Status& status() const = 0;
};

/// RecordStream over an in-memory IFile segment (owns the bytes).
class SegmentStream final : public RecordStream {
 public:
  explicit SegmentStream(std::vector<uint8_t> segment)
      : segment_(std::move(segment)), reader_(segment_) {}

  bool Next(Record* record) override { return reader_.Next(record); }
  const Status& status() const override { return reader_.status(); }

 private:
  std::vector<uint8_t> segment_;
  IFileReader reader_;
};

/// RecordStream over a vector of records (test helper / combiner output).
class VectorStream final : public RecordStream {
 public:
  explicit VectorStream(std::vector<Record> records)
      : records_(std::move(records)) {}

  bool Next(Record* record) override {
    if (index_ >= records_.size()) return false;
    *record = records_[index_++];
    return true;
  }
  const Status& status() const override { return ok_; }

 private:
  std::vector<Record> records_;
  size_t index_ = 0;
  Status ok_;
};

/// Merges N sorted streams into one sorted stream. Stable across inputs:
/// ties are broken by input index, so records from earlier streams come
/// first within equal keys.
class KWayMerger final : public RecordStream {
 public:
  explicit KWayMerger(std::vector<std::unique_ptr<RecordStream>> inputs);

  bool Next(Record* record) override;
  const Status& status() const override { return status_; }

 private:
  struct HeapItem {
    Record record;
    size_t source;
  };
  struct HeapCompare {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.record.key != b.record.key) return a.record.key > b.record.key;
      return a.source > b.source;
    }
  };

  bool Refill(size_t source);

  std::vector<std::unique_ptr<RecordStream>> inputs_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCompare> heap_;
  Status status_;
  bool primed_ = false;
};

/// Hierarchical merge (Que et al., the paper's follow-up [22]): when the
/// number of input streams exceeds `fan_in`, merge them in a tree —
/// groups of `fan_in` streams collapse into intermediate runs until one
/// level fits. Bounds the comparator working set and the number of
/// simultaneously open streams at the cost of extra passes; with
/// streams <= fan_in it degenerates to a single KWayMerger.
std::unique_ptr<RecordStream> HierarchicalMerge(
    std::vector<std::unique_ptr<RecordStream>> inputs, size_t fan_in);

/// Wraps fetched segment bytes into a sorted record stream, decompressing
/// first when the MOF was written with kMofCompressed. The one entry point
/// every shuffle client (local, HTTP, JBS) uses to interpret segments.
StatusOr<std::unique_ptr<RecordStream>> OpenSegment(
    std::vector<uint8_t> segment, bool compressed);

/// Groups a sorted stream by key: NextGroup() yields one key plus all its
/// values. The reduce-function driver.
class GroupIterator {
 public:
  explicit GroupIterator(RecordStream* stream) : stream_(stream) {}

  /// Fills key/values with the next group; false when exhausted.
  bool NextGroup(std::string* key, std::vector<std::string>* values);

  const Status& status() const { return stream_->status(); }

 private:
  RecordStream* stream_;
  Record lookahead_;
  bool have_lookahead_ = false;
  bool exhausted_ = false;
};

}  // namespace jbs::mr
