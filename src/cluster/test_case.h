// Table I: the named test cases of the evaluation — which shuffle engine
// runs over which protocol/network.
#pragma once

#include <string>
#include <vector>

#include "simnet/protocol.h"

namespace jbs::cluster {

enum class Engine { kHadoop, kJbs };

struct TestCase {
  Engine engine;
  sim::Protocol protocol;

  std::string name() const;
  /// The "Network" column of Table I.
  std::string network() const;
};

/// The eight rows of Table I (plus JBS on 1GigE, which Fig. 7b uses).
std::vector<TestCase> TableOneCases();

inline TestCase HadoopOn1GigE() {
  return {Engine::kHadoop, sim::Protocol::kTcp1GigE};
}
inline TestCase HadoopOn10GigE() {
  return {Engine::kHadoop, sim::Protocol::kTcp10GigE};
}
inline TestCase HadoopOnIpoib() {
  return {Engine::kHadoop, sim::Protocol::kIpoib};
}
inline TestCase HadoopOnSdp() { return {Engine::kHadoop, sim::Protocol::kSdp}; }
inline TestCase JbsOn1GigE() {
  return {Engine::kJbs, sim::Protocol::kTcp1GigE};
}
inline TestCase JbsOn10GigE() {
  return {Engine::kJbs, sim::Protocol::kTcp10GigE};
}
inline TestCase JbsOnIpoib() { return {Engine::kJbs, sim::Protocol::kIpoib}; }
inline TestCase JbsOnRoce() { return {Engine::kJbs, sim::Protocol::kRoce}; }
inline TestCase JbsOnRdma() { return {Engine::kJbs, sim::Protocol::kRdma}; }

}  // namespace jbs::cluster
