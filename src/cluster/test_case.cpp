#include "cluster/test_case.h"

namespace jbs::cluster {

std::string TestCase::name() const {
  const std::string prefix = engine == Engine::kHadoop ? "Hadoop on " : "JBS on ";
  switch (protocol) {
    case sim::Protocol::kTcp1GigE: return prefix + "1GigE";
    case sim::Protocol::kTcp10GigE: return prefix + "10GigE";
    case sim::Protocol::kIpoib: return prefix + "IPoIB";
    case sim::Protocol::kSdp: return prefix + "SDP";
    case sim::Protocol::kRoce: return prefix + "RoCE";
    case sim::Protocol::kRdma: return prefix + "RDMA";
  }
  return prefix + "?";
}

std::string TestCase::network() const {
  switch (protocol) {
    case sim::Protocol::kTcp1GigE: return "1GigE";
    case sim::Protocol::kTcp10GigE:
    case sim::Protocol::kRoce: return "10GigE";
    case sim::Protocol::kIpoib:
    case sim::Protocol::kSdp:
    case sim::Protocol::kRdma: return "InfiniBand";
  }
  return "?";
}

std::vector<TestCase> TableOneCases() {
  return {
      HadoopOn1GigE(), HadoopOn10GigE(), HadoopOnIpoib(), HadoopOnSdp(),
      JbsOn1GigE(),    JbsOn10GigE(),    JbsOnIpoib(),    JbsOnRoce(),
      JbsOnRdma(),
  };
}

}  // namespace jbs::cluster
