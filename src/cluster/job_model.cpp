#include "cluster/job_model.h"

#include <algorithm>
#include <cmath>

namespace jbs::cluster {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// All-to-all fan-in efficiency of the network path. Stock Hadoop opens a
/// TCP stream per MOFCopier per fetch; on 1GigE the resulting incast
/// (hundreds of synchronized flows into one link, shallow switch buffers)
/// collapses goodput badly — the oversubscription effect the paper cites
/// via Camdoop [6]. JBS's consolidated, round-robin-injected connections
/// keep far fewer, smoother flows, and the RDMA-like protocols are
/// hardware flow-controlled.
double FanInEfficiency(const TestCase& test_case, bool consolidated) {
  const bool java = test_case.engine == Engine::kHadoop;
  const bool chaotic = java || !consolidated;
  switch (test_case.protocol) {
    case sim::Protocol::kTcp1GigE: return chaotic ? 0.28 : 0.80;
    case sim::Protocol::kTcp10GigE: return chaotic ? 0.70 : 0.92;
    case sim::Protocol::kIpoib: return chaotic ? 0.75 : 0.92;
    case sim::Protocol::kSdp: return chaotic ? 0.80 : 0.93;
    case sim::Protocol::kRoce: return 0.97;
    case sim::Protocol::kRdma: return 0.97;
  }
  return 1.0;
}

struct ShuffleModel {
  double net_time = 0;        // wire time for the per-node shuffle bytes
  double disk_time = 0;       // source reads + copier spill writes
  double overhead_time = 0;   // per-request processing not overlapped
  double time = 0;            // max(net, disk) + overhead
  double cores_busy = 0;      // per-node cores while shuffling
  double spill_bytes_node = 0;  // java reduce-side spill (read back later)
  std::string bottleneck;
};

ShuffleModel ComputeShuffle(const ClusterConfig& config, uint64_t input_bytes,
                            const wl::ShuffleProfile& profile, int num_maps) {
  const CostModel& cost = config.cost;
  const auto& protocol = sim::Params(config.test_case.protocol);
  const bool java = config.test_case.engine == Engine::kHadoop;
  const int slaves = config.slaves;
  const int reducers_total = slaves * config.reduce_slots;
  const double disk_agg = config.node.disks * config.node.disk_seq_bandwidth;

  const double shuffle_total =
      static_cast<double>(input_bytes) * profile.shuffle_ratio;
  const double shuffle_node = shuffle_total / slaves;
  const double segment = std::max(
      1.0, shuffle_total / (static_cast<double>(num_maps) * reducers_total));

  // Page-cache effectiveness on the serving side: input reads + MOF writes
  // compete for the cache before the shuffle reads the MOFs back.
  const double footprint = static_cast<double>(input_bytes) *
                           (1.0 + profile.shuffle_ratio) / slaves;
  const double miss = 1.0 - Clamp01(cost.page_cache_bytes / footprint);

  ShuffleModel out;

  // ---- Network path ----
  const double link = protocol.link_bandwidth;
  const double fan_in =
      FanInEfficiency(config.test_case, config.jbs_consolidation);
  double net_rate;
  if (java) {
    // Serving: servlets serialize read->xmit (Fig. 4); the TaskTracker JVM
    // fan-out and the per-reducer JVM fan-in cap the rate on fast links.
    const double read_stream = miss * cost.java_disk_stream +
                               (1.0 - miss) * cost.java_cached_stream;
    const double xmit_stream =
        std::min(cost.java_net_stream, protocol.per_flow_cap);
    const double per_servlet = 1.0 / (1.0 / read_stream + 1.0 / xmit_stream);
    const double egress = std::min(
        {link * fan_in, cost.java_process_net_cap,
         per_servlet * cost.http_servlets});
    const double ingress =
        std::min(link * fan_in,
                 config.reduce_slots * cost.java_process_net_cap);
    net_rate = std::min(egress, ingress);
  } else {
    const double ingress =
        std::min(link * fan_in,
                 cost.jbs_threads_per_node * protocol.per_flow_cap);
    net_rate = std::min(link * fan_in, ingress);
  }
  out.net_time = shuffle_node / net_rate;

  // ---- Disk path (concurrent with the network) ----
  // Source reads: the miss fraction comes off the spindles. Access pattern
  // decides the seek bill: HttpServlets interleave segment reads across
  // MOFs; the MOFSupplier's grouped, offset-ordered batches walk each MOF
  // nearly sequentially (Fig. 5).
  const bool grouped = !java && config.jbs_pipelined_prefetch;
  const double run = grouped ? segment * 8 : std::min(segment, 1e6);
  const double physical =
      disk_agg * run / (run + config.node.disk_seek_time * disk_agg);
  // While maps still run, the spindles also serve input reads and MOF
  // writes; the shuffle gets roughly half.
  const double disk_share = 0.5;
  double disk_demand_time =
      miss * shuffle_node / (physical * disk_share);
  // Stock Hadoop spills fetched segments above the in-memory budget; the
  // write happens during the shuffle on the same disks.
  if (java) {
    const double per_reducer = shuffle_total / reducers_total;
    out.spill_bytes_node =
        std::max(0.0, per_reducer - cost.reduce_mem_bytes) *
        config.reduce_slots;
    disk_demand_time += out.spill_bytes_node / (disk_agg * disk_share);
  }
  out.disk_time = disk_demand_time;

  // ---- Per-request overhead ----
  if (java) {
    // One HTTP GET per segment, one TCP connection per fetch.
    const double requests =
        static_cast<double>(num_maps) * config.reduce_slots;
    const double per_request = cost.java_request_cost_sec +
                               protocol.connection_setup +
                               2 * protocol.latency;
    const double copiers =
        static_cast<double>(config.reduce_slots) * cost.copiers_per_reducer;
    out.overhead_time = requests * per_request / copiers;
  } else {
    const double chunk = static_cast<double>(config.transport_buffer);
    const double buffers =
        std::max(1.0, cost.datacache_pool_bytes / chunk);
    const double chunks = shuffle_node / chunk;
    const double concurrency =
        std::min(cost.jbs_threads_per_node, std::max(1.0, buffers / 2));
    const double per_chunk = cost.jbs_request_service_sec +
                             (protocol.rdma_semantics
                                  ? cost.jbs_chunk_verbs_sec
                                  : cost.jbs_chunk_socket_sec) +
                             2 * protocol.latency;
    out.overhead_time = chunks * per_chunk / concurrency;
    // Too few buffers collapse the read/transmit overlap (Fig. 11's 512KB
    // droop); the serialized ablation never overlaps.
    double pipeline_eff = Clamp01(buffers / 16.0);
    if (!config.jbs_pipelined_prefetch) pipeline_eff = 0.55;
    out.disk_time /= std::max(pipeline_eff, 0.2);
    if (!config.jbs_consolidation) {
      const double fetches =
          static_cast<double>(num_maps) * config.reduce_slots;
      out.overhead_time += fetches * protocol.connection_setup /
                           cost.jbs_threads_per_node;
    }
  }

  out.time = std::max(out.net_time, out.disk_time) + out.overhead_time;
  if (out.net_time >= out.disk_time) {
    out.bottleneck = java && net_rate < link * fan_in * 0.99
                         ? "JVM shuffle stack"
                         : "network link";
  } else {
    out.bottleneck = java ? "source disks (random reads) + copier spills"
                          : "source disks (grouped reads)";
  }

  // ---- CPU while shuffling ----
  const double rate = shuffle_node / std::max(out.time, 1e-9);
  if (java) {
    // Java streams are CPU-bound copies: serving read + serving xmit +
    // receiving stream, plus GC churn and thread bookkeeping.
    const double stream_cores =
        (rate / cost.java_disk_stream + 2 * rate / cost.java_net_stream +
         rate * protocol.cpu_per_byte * 1e0) *
        cost.java_serialization_cpu_mult;
    const double thread_cores =
        (config.reduce_slots * cost.java_shuffle_threads_per_reducer +
         cost.http_servlets * 0.25) *
        cost.per_thread_cores;
    out.cores_busy =
        stream_cores * (1 + cost.gc_overhead_frac) + thread_cores;
  } else {
    out.cores_busy = rate * (2 * protocol.cpu_per_byte +
                             cost.native_pread_cpu_per_byte) +
                     2 * cost.jbs_threads_per_node * cost.per_thread_cores;
  }
  return out;
}

}  // namespace

JobResult SimulateJob(const ClusterConfig& config, wl::Workload workload,
                      uint64_t input_bytes) {
  const CostModel& cost = config.cost;
  const wl::ShuffleProfile profile = wl::ProfileFor(workload);
  const auto& node = config.node;
  const auto& protocol = sim::Params(config.test_case.protocol);
  const bool java_engine = config.test_case.engine == Engine::kHadoop;
  const int slaves = config.slaves;

  const int num_maps = static_cast<int>(
      (input_bytes + config.block_size - 1) / config.block_size);
  const int map_slots_total = slaves * config.map_slots;
  const int waves = std::max(1, (num_maps + map_slots_total - 1) /
                                    map_slots_total);
  const double disk_agg = node.disks * node.disk_seq_bandwidth;

  // ---- Map phase (framework code JBS does not replace; identical for
  // both engines) ----
  const double block = static_cast<double>(config.block_size);
  const double disk_share = disk_agg / config.map_slots;
  // Sequential buffered java streams move ~80 MB/s; the 3.1x stream pain
  // of Fig. 2a is the servlet's interleaved random reads, not this path.
  const double seq_stream = 80e6;
  const double read_rate = std::min(seq_stream, disk_share);
  const double write_rate = std::min(seq_stream, disk_share);
  const double map_cpu_sec = block / 1e6 * profile.map_cpu_per_mb;
  const double task_time = cost.task_startup_sec + block / read_rate +
                           map_cpu_sec +
                           block * profile.shuffle_ratio / write_rate;
  const double map_phase = waves * task_time;

  // ---- Shuffle, overlapped with map waves after the first ----
  const auto shuffle = ComputeShuffle(config, input_bytes, profile,
                                      std::max(num_maps, 1));
  const double shuffle_start = task_time;
  const double tail_floor = shuffle.time / waves;  // last wave's share
  const double shuffle_end = std::max(map_phase + tail_floor,
                                      shuffle_start + shuffle.time);

  // ---- Reduce tail: the straggler reducer decides job completion ----
  const int reducers_total = slaves * config.reduce_slots;
  const double per_reducer_mean =
      static_cast<double>(input_bytes) * profile.shuffle_ratio /
      reducers_total;
  const double per_reducer_max = per_reducer_mean * profile.reducer_skew;
  // Stock Hadoop reads its reduce-side spills back for the merge; the
  // network-levitated merge has nothing on disk.
  const double spill_readback =
      java_engine
          ? (shuffle.spill_bytes_node +
             std::max(0.0, per_reducer_max - per_reducer_mean) *
                 (profile.reducer_skew > 1.0 ? 2.0 : 0.0)) /
                disk_agg
          : 0.0;
  // The skewed reducer still has (max - mean) bytes to fetch after the
  // bulk shuffle drains, through a single reducer's pipe.
  const double straggler_pipe =
      java_engine
          ? std::min(cost.java_process_net_cap,
                     protocol.link_bandwidth *
                         FanInEfficiency(config.test_case, true))
          : std::min(protocol.link_bandwidth *
                         FanInEfficiency(config.test_case,
                                         config.jbs_consolidation),
                     cost.jbs_threads_per_node * protocol.per_flow_cap);
  const double straggler_fetch =
      std::max(0.0, per_reducer_max - per_reducer_mean) / straggler_pipe;
  const double reduce_cpu =
      per_reducer_max / 1e6 * profile.reduce_cpu_per_mb;
  const double out_node =
      static_cast<double>(input_bytes) * profile.output_ratio / slaves;
  const double out_rate = std::min(seq_stream * config.reduce_slots,
                                   disk_agg);
  const double reduce_tail = spill_readback + straggler_fetch + reduce_cpu +
                             out_node / out_rate + cost.task_startup_sec;
  const double total = shuffle_end + reduce_tail;

  // ---- CPU accounting (node average; the cluster is symmetric) ----
  sim::CpuAccountant cpu(node.cores, /*bin_width=*/5.0);
  {
    const double active_tasks = std::min<double>(
        config.map_slots, static_cast<double>(num_maps) / slaves);
    const double per_task_cores =
        (block / read_rate + map_cpu_sec +
         block * profile.shuffle_ratio / write_rate +
         cost.task_startup_sec * 0.3) /
        task_time;
    const double java_io_mult = 1 + cost.gc_overhead_frac * 0.5;
    cpu.ChargeCores(0, map_phase,
                    active_tasks * per_task_cores * java_io_mult +
                        cost.daemon_cores);
  }
  cpu.ChargeCores(shuffle_start, shuffle_end,
                  shuffle.cores_busy + cost.daemon_cores * 0.3);
  {
    const double busy_frac =
        (reduce_cpu + out_node / out_rate + spill_readback) /
        std::max(reduce_tail, 1e-9);
    const double java_tail_mult =
        java_engine ? (1 + cost.gc_overhead_frac) : 1.0;
    cpu.ChargeCores(shuffle_end, total,
                    busy_frac * config.reduce_slots * java_tail_mult +
                        cost.daemon_cores);
  }

  JobResult result;
  result.total_sec = total;
  result.map_phase_sec = map_phase;
  result.shuffle_end_sec = shuffle_end;
  result.reduce_tail_sec = reduce_tail;
  result.shuffle_rate_node =
      static_cast<double>(input_bytes) * profile.shuffle_ratio / slaves /
      std::max(shuffle.time, 1e-9);
  result.request_overhead_sec = shuffle.overhead_time;
  result.bottleneck = shuffle.bottleneck;
  result.mean_cpu_util = cpu.MeanUtilization(total);
  result.cpu_trace = cpu.Trace(total);
  return result;
}

JobResult SimulateTerasort(const TestCase& test_case, uint64_t input_bytes,
                           int slaves) {
  ClusterConfig config;
  config.slaves = slaves;
  config.test_case = test_case;
  return SimulateJob(config, wl::Workload::kTerasort, input_bytes);
}

}  // namespace jbs::cluster
