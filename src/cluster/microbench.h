// Discrete-event models behind the Fig. 2 motivation micro-benchmarks:
// here queueing and per-request interleaving are the whole point, so these
// run on the simnet event engine rather than the wave model.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/protocol.h"

namespace jbs::cluster {

/// Language/runtime of the I/O path under test (Fig. 2's Java vs native C
/// vs mmap comparison).
enum class IoPath { kJavaStream, kNativeRead, kNativeMmap };

const char* IoPathName(IoPath path);

/// Fig. 2(a): N concurrent servlets each read one MOF from the same pair
/// of disks; returns the mean per-MOF read time in milliseconds. Servlet
/// reads interleave, so concurrency costs seeks; the Java path further
/// caps each stream at the JVM stream rate.
double SimulateMofReadTime(int concurrent_servlets, uint64_t mof_bytes,
                           IoPath path, const sim::NodeParams& node = {},
                           const sim::JvmParams& jvm = {});

/// Fig. 2(b): one HttpServlet streams one segment to one MOFCopier over
/// `protocol`; returns the shuffle time in milliseconds. The serving side
/// reads the segment from the page cache and the stream is capped by the
/// JVM on the Java path.
double SimulateSingleStreamShuffle(uint64_t segment_bytes, bool java,
                                   sim::Protocol protocol,
                                   const sim::JvmParams& jvm = {});

/// Fig. 2(c): `nodes` senders each push one `segment_bytes` segment into a
/// single ReduceTask's node concurrently; returns the time until the last
/// byte arrives, in milliseconds. Java is additionally capped by the
/// receiving JVM's aggregate fan-in ceiling.
double SimulateFanInShuffle(int nodes, uint64_t segment_bytes, bool java,
                            sim::Protocol protocol,
                            const sim::JvmParams& jvm = {});

}  // namespace jbs::cluster
