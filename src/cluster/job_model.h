// Cluster-scale job model: reproduces the paper's 22-slave testbed runs
// (Figs. 7-12) as a wave-based bottleneck analysis on top of the simnet
// cost catalog. Each phase's duration comes from the binding resource
// (disk, link, per-stream JVM ceiling, per-process JVM ceiling, request
// overhead); CPU charges per phase produce the sar-style traces of Fig 10.
//
// Why analytic rather than packet-level: at 256 GB the shuffle is ~2M
// buffer-sized chunks; the figure-level behaviour is set by which resource
// saturates, not by per-packet interleaving. The discrete-event machinery
// is used where queueing *is* the point (the Fig. 2 micro-benchmarks, see
// microbench.h).
#pragma once

#include <string>
#include <vector>

#include "cluster/test_case.h"
#include "simnet/cpu.h"
#include "simnet/protocol.h"
#include "workloads/tarazu.h"

namespace jbs::cluster {

/// Calibration constants. Defaults reproduce the paper's Fig. 2 ratios and
/// testbed characteristics; benches override a few for sweeps.
struct CostModel {
  // Task machinery.
  double task_startup_sec = 1.5;   // JVM task launch + init
  double reduce_mem_bytes = 512e6; // per-reducer in-memory merge budget

  // JVM stream ceilings (Fig. 2 calibration; these are CPU-bound, so each
  // busy stream charges ~1 core while active).
  double java_disk_stream = 35e6;    // FileInputStream from disk
  double java_cached_stream = 90e6;  // FileInputStream over page cache
  double java_net_stream = 360e6;    // socket stream
  double java_process_net_cap = 500e6;  // whole-JVM shuffle fan-in/out

  // Native path costs.
  double native_pread_cpu_per_byte = 0.5e-9;
  double native_memcpy_rate = 3e9;

  // Per-request service costs (beyond wire latency). The JBS cost splits
  // into the supplier's disk/service share and the client's wire-stack
  // share: socket-based transports pay syscalls + interrupts per chunk,
  // verbs transports poll completions.
  double jbs_request_service_sec = 0.0005;  // decode + pread + enqueue
  double jbs_chunk_socket_sec = 0.00025;     // TCP/IPoIB per-chunk client
  double jbs_chunk_verbs_sec = 0.00003;      // RDMA/RoCE per-chunk client
  double java_request_cost_sec = 0.0015;  // HTTP parse + servlet dispatch

  // Threads & GC.
  double java_shuffle_threads_per_reducer = 8;
  double jbs_threads_per_node = 3;
  double per_thread_cores = 0.01;   // bookkeeping cores per live thread
  double gc_overhead_frac = 0.30;   // extra CPU on java stream work
  double java_serialization_cpu_mult = 3.0;  // (de)serialization + buffer
                                             // churn on every java stream
  double daemon_cores = 0.4;        // TaskTracker + DataNode background

  // Node / storage.
  double page_cache_bytes = 8e9;   // RAM left for the page cache
  double datacache_pool_bytes = 4 << 20;  // JBS transport buffer pool/node

  // Baseline server concurrency (tasktracker.http.threads).
  int http_servlets = 40;
  int copiers_per_reducer = 5;      // mapred.reduce.parallel.copies
};

struct ClusterConfig {
  int slaves = 22;
  int map_slots = 4;
  int reduce_slots = 2;
  uint64_t block_size = 256ull << 20;
  TestCase test_case = HadoopOnIpoib();
  size_t transport_buffer = 128 * 1024;  // JBS buffer size (Fig. 11)
  sim::NodeParams node;
  CostModel cost;

  // JBS design-choice ablations (DESIGN.md §6).
  bool jbs_pipelined_prefetch = true;
  bool jbs_consolidation = true;
};

struct JobResult {
  double total_sec = 0;
  double map_phase_sec = 0;       // wave-parallel map execution
  double shuffle_end_sec = 0;     // when the last segment lands
  double reduce_tail_sec = 0;     // post-shuffle merge/reduce/write
  double shuffle_rate_node = 0;   // effective per-node shuffle B/s
  double request_overhead_sec = 0;
  double mean_cpu_util = 0;       // % over the whole job, node average
  std::vector<sim::CpuAccountant::Sample> cpu_trace;  // 5s bins, node avg
  std::string bottleneck;         // which resource bound the shuffle
};

/// Simulates one job of `input_bytes` with workload `profile`.
JobResult SimulateJob(const ClusterConfig& config, wl::Workload workload,
                      uint64_t input_bytes);

/// Convenience: Terasort at the paper's configuration.
JobResult SimulateTerasort(const TestCase& test_case, uint64_t input_bytes,
                           int slaves = 22);

}  // namespace jbs::cluster
