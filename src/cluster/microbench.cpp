#include "cluster/microbench.h"

#include <algorithm>
#include <functional>

#include "simnet/disk.h"
#include "simnet/fair_share.h"
#include "simnet/simulator.h"

namespace jbs::cluster {

const char* IoPathName(IoPath path) {
  switch (path) {
    case IoPath::kJavaStream: return "Java (stream read)";
    case IoPath::kNativeRead: return "Native C (read)";
    case IoPath::kNativeMmap: return "Native C (mmap)";
  }
  return "?";
}

double SimulateMofReadTime(int concurrent_servlets, uint64_t mof_bytes,
                           IoPath path, const sim::NodeParams& node,
                           const sim::JvmParams& jvm) {
  sim::Simulator simulator;
  sim::DiskParams disk_params;
  // One MOF lives on one spindle; a single servlet streams one disk.
  disk_params.seq_bandwidth = node.disk_seq_bandwidth;
  disk_params.seek_time = node.disk_seek_time;
  sim::DiskModel disk(&simulator, disk_params);

  // Two things separate the three paths: per-chunk processing (the copy
  // out of the kernel and through the runtime; the Java figure is the
  // effective stream rate net of kernel readahead overlap, mmap pays no
  // copy at all) and the read granularity — FileInputStream issues small
  // buffered reads, so when servlets interleave it pays many more seeks
  // than native 1MB read(2) calls or mmap with readahead.
  double process_rate = 0;
  double chunk_bytes = 0;
  switch (path) {
    case IoPath::kJavaStream:
      process_rate = jvm.disk_stream_cap * 1.4;
      chunk_bytes = 128 << 10;
      break;
    case IoPath::kNativeRead:
      process_rate = 800e6;  // one copy
      chunk_bytes = 1 << 20;
      break;
    case IoPath::kNativeMmap:
      process_rate = 1e12;  // zero copy
      chunk_bytes = 4 << 20;  // readahead window
      break;
  }
  const double kChunk = chunk_bytes;
  struct Servlet {
    double remaining;
    double finish_time = 0;
  };
  std::vector<Servlet> servlets(
      static_cast<size_t>(concurrent_servlets),
      Servlet{static_cast<double>(mof_bytes)});

  // Each servlet issues its next chunk as soon as the previous one is
  // processed; chunks from different servlets interleave at the disk, so a
  // chunk seeks whenever the immediately preceding serviced chunk belongs
  // to another servlet.
  int last_at_disk = -1;
  std::function<void(int)> issue = [&](int id) {
    Servlet& servlet = servlets[static_cast<size_t>(id)];
    const double bytes = std::min(kChunk, servlet.remaining);
    const bool sequential = last_at_disk == id;
    last_at_disk = id;
    disk.Read(bytes, {.sequential = sequential},
              [&, id, bytes](sim::SimTime) {
                // Runtime processing of the chunk.
                simulator.Schedule(bytes / process_rate, [&, id, bytes] {
                  Servlet& s = servlets[static_cast<size_t>(id)];
                  s.remaining -= bytes;
                  if (s.remaining > 0) {
                    issue(id);
                  } else {
                    s.finish_time = simulator.Now();
                  }
                });
              });
  };
  for (int id = 0; id < concurrent_servlets; ++id) issue(id);
  simulator.Run();

  double total = 0;
  for (const Servlet& servlet : servlets) total += servlet.finish_time;
  return total / concurrent_servlets * 1000.0;
}

double SimulateSingleStreamShuffle(uint64_t segment_bytes, bool java,
                                   sim::Protocol protocol,
                                   const sim::JvmParams& jvm) {
  const auto& params = sim::Params(protocol);
  sim::Simulator simulator;
  sim::FairShareResource link(&simulator, params.link_bandwidth);
  // The micro-benchmark is cache-hot (repeated segment transfers), so the
  // binding factor is the per-stream processing ceiling: the Java socket
  // stream tops out near jvm.net_stream_cap; native C reaches the
  // protocol's per-flow rate. On 1GigE both exceed the link, hiding the
  // JVM (the paper's Fig. 2b observation).
  const double stream_cap =
      java ? std::min(jvm.net_stream_cap, params.per_flow_cap)
           : params.per_flow_cap;
  double finish = 0;
  simulator.Schedule(params.latency, [&] {
    link.StartFlow(static_cast<double>(segment_bytes), stream_cap,
                   [&](sim::SimTime t) { finish = t; });
  });
  simulator.Run();
  return finish * 1000.0;
}

double SimulateFanInShuffle(int nodes, uint64_t segment_bytes, bool java,
                            sim::Protocol protocol,
                            const sim::JvmParams& jvm) {
  const auto& params = sim::Params(protocol);
  sim::Simulator simulator;
  // The receiver's effective capacity: the NIC, or for Java the fan-in
  // ceiling of the ReduceTask JVM, whichever is lower (Fig. 2c's >=2.5x).
  const double capacity =
      java ? std::min(params.link_bandwidth, jvm.process_net_cap)
           : params.link_bandwidth;
  sim::FairShareResource downlink(&simulator, capacity);
  const double per_flow =
      java ? std::min(jvm.net_stream_cap, params.per_flow_cap)
           : params.per_flow_cap;
  double last_finish = 0;
  for (int n = 0; n < nodes; ++n) {
    simulator.Schedule(params.latency, [&] {
      downlink.StartFlow(static_cast<double>(segment_bytes), per_flow,
                         [&](sim::SimTime t) {
                           last_finish = std::max(last_finish, t);
                         });
    });
  }
  simulator.Run();
  return last_finish * 1000.0;
}

}  // namespace jbs::cluster
