file(REMOVE_RECURSE
  "CMakeFiles/mapred_test.dir/mapred/api_test.cpp.o"
  "CMakeFiles/mapred_test.dir/mapred/api_test.cpp.o.d"
  "CMakeFiles/mapred_test.dir/mapred/collector_test.cpp.o"
  "CMakeFiles/mapred_test.dir/mapred/collector_test.cpp.o.d"
  "CMakeFiles/mapred_test.dir/mapred/compress_integration_test.cpp.o"
  "CMakeFiles/mapred_test.dir/mapred/compress_integration_test.cpp.o.d"
  "CMakeFiles/mapred_test.dir/mapred/engine_test.cpp.o"
  "CMakeFiles/mapred_test.dir/mapred/engine_test.cpp.o.d"
  "CMakeFiles/mapred_test.dir/mapred/hierarchical_merge_test.cpp.o"
  "CMakeFiles/mapred_test.dir/mapred/hierarchical_merge_test.cpp.o.d"
  "CMakeFiles/mapred_test.dir/mapred/ifile_test.cpp.o"
  "CMakeFiles/mapred_test.dir/mapred/ifile_test.cpp.o.d"
  "CMakeFiles/mapred_test.dir/mapred/merger_test.cpp.o"
  "CMakeFiles/mapred_test.dir/mapred/merger_test.cpp.o.d"
  "CMakeFiles/mapred_test.dir/mapred/mof_test.cpp.o"
  "CMakeFiles/mapred_test.dir/mapred/mof_test.cpp.o.d"
  "mapred_test"
  "mapred_test.pdb"
  "mapred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
