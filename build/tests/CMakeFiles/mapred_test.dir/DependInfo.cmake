
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mapred/api_test.cpp" "tests/CMakeFiles/mapred_test.dir/mapred/api_test.cpp.o" "gcc" "tests/CMakeFiles/mapred_test.dir/mapred/api_test.cpp.o.d"
  "/root/repo/tests/mapred/collector_test.cpp" "tests/CMakeFiles/mapred_test.dir/mapred/collector_test.cpp.o" "gcc" "tests/CMakeFiles/mapred_test.dir/mapred/collector_test.cpp.o.d"
  "/root/repo/tests/mapred/compress_integration_test.cpp" "tests/CMakeFiles/mapred_test.dir/mapred/compress_integration_test.cpp.o" "gcc" "tests/CMakeFiles/mapred_test.dir/mapred/compress_integration_test.cpp.o.d"
  "/root/repo/tests/mapred/engine_test.cpp" "tests/CMakeFiles/mapred_test.dir/mapred/engine_test.cpp.o" "gcc" "tests/CMakeFiles/mapred_test.dir/mapred/engine_test.cpp.o.d"
  "/root/repo/tests/mapred/hierarchical_merge_test.cpp" "tests/CMakeFiles/mapred_test.dir/mapred/hierarchical_merge_test.cpp.o" "gcc" "tests/CMakeFiles/mapred_test.dir/mapred/hierarchical_merge_test.cpp.o.d"
  "/root/repo/tests/mapred/ifile_test.cpp" "tests/CMakeFiles/mapred_test.dir/mapred/ifile_test.cpp.o" "gcc" "tests/CMakeFiles/mapred_test.dir/mapred/ifile_test.cpp.o.d"
  "/root/repo/tests/mapred/merger_test.cpp" "tests/CMakeFiles/mapred_test.dir/mapred/merger_test.cpp.o" "gcc" "tests/CMakeFiles/mapred_test.dir/mapred/merger_test.cpp.o.d"
  "/root/repo/tests/mapred/mof_test.cpp" "tests/CMakeFiles/mapred_test.dir/mapred/mof_test.cpp.o" "gcc" "tests/CMakeFiles/mapred_test.dir/mapred/mof_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapred/CMakeFiles/jbs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/jbs_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
