
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transport/connection_manager_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/connection_manager_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/connection_manager_test.cpp.o.d"
  "/root/repo/tests/transport/fault_injection_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/fault_injection_test.cpp.o.d"
  "/root/repo/tests/transport/rdma_read_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/rdma_read_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/rdma_read_test.cpp.o.d"
  "/root/repo/tests/transport/rdma_transport_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/rdma_transport_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/rdma_transport_test.cpp.o.d"
  "/root/repo/tests/transport/soft_rdma_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/soft_rdma_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/soft_rdma_test.cpp.o.d"
  "/root/repo/tests/transport/tcp_transport_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/tcp_transport_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/tcp_transport_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/jbs_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
