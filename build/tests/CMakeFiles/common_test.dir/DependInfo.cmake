
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/blocking_queue_test.cpp" "tests/CMakeFiles/common_test.dir/common/blocking_queue_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/blocking_queue_test.cpp.o.d"
  "/root/repo/tests/common/buffer_pool_test.cpp" "tests/CMakeFiles/common_test.dir/common/buffer_pool_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/buffer_pool_test.cpp.o.d"
  "/root/repo/tests/common/bytes_test.cpp" "tests/CMakeFiles/common_test.dir/common/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/bytes_test.cpp.o.d"
  "/root/repo/tests/common/compress_test.cpp" "tests/CMakeFiles/common_test.dir/common/compress_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/compress_test.cpp.o.d"
  "/root/repo/tests/common/config_test.cpp" "tests/CMakeFiles/common_test.dir/common/config_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/config_test.cpp.o.d"
  "/root/repo/tests/common/framing_test.cpp" "tests/CMakeFiles/common_test.dir/common/framing_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/framing_test.cpp.o.d"
  "/root/repo/tests/common/lru_cache_test.cpp" "tests/CMakeFiles/common_test.dir/common/lru_cache_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/lru_cache_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/common_test.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/status_test.cpp" "tests/CMakeFiles/common_test.dir/common/status_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/status_test.cpp.o.d"
  "/root/repo/tests/common/thread_pool_test.cpp" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
