# Empty dependencies file for jbs_test.
# This may be replaced when dependencies are built.
