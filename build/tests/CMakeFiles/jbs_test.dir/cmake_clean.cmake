file(REMOVE_RECURSE
  "CMakeFiles/jbs_test.dir/jbs/compress_e2e_test.cpp.o"
  "CMakeFiles/jbs_test.dir/jbs/compress_e2e_test.cpp.o.d"
  "CMakeFiles/jbs_test.dir/jbs/engine_stress_test.cpp.o"
  "CMakeFiles/jbs_test.dir/jbs/engine_stress_test.cpp.o.d"
  "CMakeFiles/jbs_test.dir/jbs/fault_tolerance_test.cpp.o"
  "CMakeFiles/jbs_test.dir/jbs/fault_tolerance_test.cpp.o.d"
  "CMakeFiles/jbs_test.dir/jbs/mof_supplier_test.cpp.o"
  "CMakeFiles/jbs_test.dir/jbs/mof_supplier_test.cpp.o.d"
  "CMakeFiles/jbs_test.dir/jbs/net_merger_test.cpp.o"
  "CMakeFiles/jbs_test.dir/jbs/net_merger_test.cpp.o.d"
  "CMakeFiles/jbs_test.dir/jbs/plugin_e2e_test.cpp.o"
  "CMakeFiles/jbs_test.dir/jbs/plugin_e2e_test.cpp.o.d"
  "CMakeFiles/jbs_test.dir/jbs/protocol_test.cpp.o"
  "CMakeFiles/jbs_test.dir/jbs/protocol_test.cpp.o.d"
  "jbs_test"
  "jbs_test.pdb"
  "jbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
