
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/jbs/compress_e2e_test.cpp" "tests/CMakeFiles/jbs_test.dir/jbs/compress_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/jbs_test.dir/jbs/compress_e2e_test.cpp.o.d"
  "/root/repo/tests/jbs/engine_stress_test.cpp" "tests/CMakeFiles/jbs_test.dir/jbs/engine_stress_test.cpp.o" "gcc" "tests/CMakeFiles/jbs_test.dir/jbs/engine_stress_test.cpp.o.d"
  "/root/repo/tests/jbs/fault_tolerance_test.cpp" "tests/CMakeFiles/jbs_test.dir/jbs/fault_tolerance_test.cpp.o" "gcc" "tests/CMakeFiles/jbs_test.dir/jbs/fault_tolerance_test.cpp.o.d"
  "/root/repo/tests/jbs/mof_supplier_test.cpp" "tests/CMakeFiles/jbs_test.dir/jbs/mof_supplier_test.cpp.o" "gcc" "tests/CMakeFiles/jbs_test.dir/jbs/mof_supplier_test.cpp.o.d"
  "/root/repo/tests/jbs/net_merger_test.cpp" "tests/CMakeFiles/jbs_test.dir/jbs/net_merger_test.cpp.o" "gcc" "tests/CMakeFiles/jbs_test.dir/jbs/net_merger_test.cpp.o.d"
  "/root/repo/tests/jbs/plugin_e2e_test.cpp" "tests/CMakeFiles/jbs_test.dir/jbs/plugin_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/jbs_test.dir/jbs/plugin_e2e_test.cpp.o.d"
  "/root/repo/tests/jbs/protocol_test.cpp" "tests/CMakeFiles/jbs_test.dir/jbs/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/jbs_test.dir/jbs/protocol_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jbs/CMakeFiles/jbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/jbs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/jbs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/jbs_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/jbs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/jbs_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
