
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simnet/cpu_test.cpp" "tests/CMakeFiles/simnet_test.dir/simnet/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/simnet_test.dir/simnet/cpu_test.cpp.o.d"
  "/root/repo/tests/simnet/disk_test.cpp" "tests/CMakeFiles/simnet_test.dir/simnet/disk_test.cpp.o" "gcc" "tests/CMakeFiles/simnet_test.dir/simnet/disk_test.cpp.o.d"
  "/root/repo/tests/simnet/fair_share_property_test.cpp" "tests/CMakeFiles/simnet_test.dir/simnet/fair_share_property_test.cpp.o" "gcc" "tests/CMakeFiles/simnet_test.dir/simnet/fair_share_property_test.cpp.o.d"
  "/root/repo/tests/simnet/fair_share_test.cpp" "tests/CMakeFiles/simnet_test.dir/simnet/fair_share_test.cpp.o" "gcc" "tests/CMakeFiles/simnet_test.dir/simnet/fair_share_test.cpp.o.d"
  "/root/repo/tests/simnet/protocol_test.cpp" "tests/CMakeFiles/simnet_test.dir/simnet/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/simnet_test.dir/simnet/protocol_test.cpp.o.d"
  "/root/repo/tests/simnet/simulator_test.cpp" "tests/CMakeFiles/simnet_test.dir/simnet/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/simnet_test.dir/simnet/simulator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/jbs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
