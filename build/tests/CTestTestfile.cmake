# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/jbs_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
