# Empty compiler generated dependencies file for tarazu_suite.
# This may be replaced when dependencies are built.
