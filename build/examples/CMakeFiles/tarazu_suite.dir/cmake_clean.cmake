file(REMOVE_RECURSE
  "CMakeFiles/tarazu_suite.dir/tarazu_suite.cpp.o"
  "CMakeFiles/tarazu_suite.dir/tarazu_suite.cpp.o.d"
  "tarazu_suite"
  "tarazu_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarazu_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
