
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/terasort_comparison.cpp" "examples/CMakeFiles/terasort_comparison.dir/terasort_comparison.cpp.o" "gcc" "examples/CMakeFiles/terasort_comparison.dir/terasort_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jbs/CMakeFiles/jbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/jbs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/jbs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/jbs_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/jbs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/jbs_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
