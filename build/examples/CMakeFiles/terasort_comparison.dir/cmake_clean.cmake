file(REMOVE_RECURSE
  "CMakeFiles/terasort_comparison.dir/terasort_comparison.cpp.o"
  "CMakeFiles/terasort_comparison.dir/terasort_comparison.cpp.o.d"
  "terasort_comparison"
  "terasort_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terasort_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
