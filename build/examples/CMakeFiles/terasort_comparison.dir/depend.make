# Empty dependencies file for terasort_comparison.
# This may be replaced when dependencies are built.
