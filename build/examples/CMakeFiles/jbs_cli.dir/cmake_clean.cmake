file(REMOVE_RECURSE
  "CMakeFiles/jbs_cli.dir/jbs_cli.cpp.o"
  "CMakeFiles/jbs_cli.dir/jbs_cli.cpp.o.d"
  "jbs_cli"
  "jbs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
