# Empty compiler generated dependencies file for jbs_cli.
# This may be replaced when dependencies are built.
