# Empty dependencies file for table1_test_cases.
# This may be replaced when dependencies are built.
