file(REMOVE_RECURSE
  "CMakeFiles/fig12_benchmarks.dir/fig12_benchmarks.cpp.o"
  "CMakeFiles/fig12_benchmarks.dir/fig12_benchmarks.cpp.o.d"
  "fig12_benchmarks"
  "fig12_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
