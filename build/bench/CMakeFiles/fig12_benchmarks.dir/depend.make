# Empty dependencies file for fig12_benchmarks.
# This may be replaced when dependencies are built.
