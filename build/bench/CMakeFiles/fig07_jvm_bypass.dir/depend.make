# Empty dependencies file for fig07_jvm_bypass.
# This may be replaced when dependencies are built.
