file(REMOVE_RECURSE
  "CMakeFiles/fig07_jvm_bypass.dir/fig07_jvm_bypass.cpp.o"
  "CMakeFiles/fig07_jvm_bypass.dir/fig07_jvm_bypass.cpp.o.d"
  "fig07_jvm_bypass"
  "fig07_jvm_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_jvm_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
