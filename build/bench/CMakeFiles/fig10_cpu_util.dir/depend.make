# Empty dependencies file for fig10_cpu_util.
# This may be replaced when dependencies are built.
