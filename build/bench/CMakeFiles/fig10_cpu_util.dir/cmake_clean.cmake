file(REMOVE_RECURSE
  "CMakeFiles/fig10_cpu_util.dir/fig10_cpu_util.cpp.o"
  "CMakeFiles/fig10_cpu_util.dir/fig10_cpu_util.cpp.o.d"
  "fig10_cpu_util"
  "fig10_cpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
