
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig02_motivation.cpp" "bench/CMakeFiles/fig02_motivation.dir/fig02_motivation.cpp.o" "gcc" "bench/CMakeFiles/fig02_motivation.dir/fig02_motivation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/jbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/jbs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/jbs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/jbs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/jbs_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
