file(REMOVE_RECURSE
  "CMakeFiles/fig04_05_pipelining.dir/fig04_05_pipelining.cpp.o"
  "CMakeFiles/fig04_05_pipelining.dir/fig04_05_pipelining.cpp.o.d"
  "fig04_05_pipelining"
  "fig04_05_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_05_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
