# Empty dependencies file for fig04_05_pipelining.
# This may be replaced when dependencies are built.
