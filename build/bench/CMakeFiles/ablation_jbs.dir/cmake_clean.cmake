file(REMOVE_RECURSE
  "CMakeFiles/ablation_jbs.dir/ablation_jbs.cpp.o"
  "CMakeFiles/ablation_jbs.dir/ablation_jbs.cpp.o.d"
  "ablation_jbs"
  "ablation_jbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
