# Empty dependencies file for ablation_jbs.
# This may be replaced when dependencies are built.
