# Empty dependencies file for jbs_simnet.
# This may be replaced when dependencies are built.
