
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/cpu.cpp" "src/simnet/CMakeFiles/jbs_simnet.dir/cpu.cpp.o" "gcc" "src/simnet/CMakeFiles/jbs_simnet.dir/cpu.cpp.o.d"
  "/root/repo/src/simnet/disk.cpp" "src/simnet/CMakeFiles/jbs_simnet.dir/disk.cpp.o" "gcc" "src/simnet/CMakeFiles/jbs_simnet.dir/disk.cpp.o.d"
  "/root/repo/src/simnet/fair_share.cpp" "src/simnet/CMakeFiles/jbs_simnet.dir/fair_share.cpp.o" "gcc" "src/simnet/CMakeFiles/jbs_simnet.dir/fair_share.cpp.o.d"
  "/root/repo/src/simnet/protocol.cpp" "src/simnet/CMakeFiles/jbs_simnet.dir/protocol.cpp.o" "gcc" "src/simnet/CMakeFiles/jbs_simnet.dir/protocol.cpp.o.d"
  "/root/repo/src/simnet/simulator.cpp" "src/simnet/CMakeFiles/jbs_simnet.dir/simulator.cpp.o" "gcc" "src/simnet/CMakeFiles/jbs_simnet.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
