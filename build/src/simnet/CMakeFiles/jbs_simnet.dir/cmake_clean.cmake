file(REMOVE_RECURSE
  "CMakeFiles/jbs_simnet.dir/cpu.cpp.o"
  "CMakeFiles/jbs_simnet.dir/cpu.cpp.o.d"
  "CMakeFiles/jbs_simnet.dir/disk.cpp.o"
  "CMakeFiles/jbs_simnet.dir/disk.cpp.o.d"
  "CMakeFiles/jbs_simnet.dir/fair_share.cpp.o"
  "CMakeFiles/jbs_simnet.dir/fair_share.cpp.o.d"
  "CMakeFiles/jbs_simnet.dir/protocol.cpp.o"
  "CMakeFiles/jbs_simnet.dir/protocol.cpp.o.d"
  "CMakeFiles/jbs_simnet.dir/simulator.cpp.o"
  "CMakeFiles/jbs_simnet.dir/simulator.cpp.o.d"
  "libjbs_simnet.a"
  "libjbs_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
