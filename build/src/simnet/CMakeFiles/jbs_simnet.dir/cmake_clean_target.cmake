file(REMOVE_RECURSE
  "libjbs_simnet.a"
)
