
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/tarazu.cpp" "src/workloads/CMakeFiles/jbs_workloads.dir/tarazu.cpp.o" "gcc" "src/workloads/CMakeFiles/jbs_workloads.dir/tarazu.cpp.o.d"
  "/root/repo/src/workloads/teragen.cpp" "src/workloads/CMakeFiles/jbs_workloads.dir/teragen.cpp.o" "gcc" "src/workloads/CMakeFiles/jbs_workloads.dir/teragen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/jbs_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/jbs_mapred.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
