file(REMOVE_RECURSE
  "libjbs_workloads.a"
)
