# Empty compiler generated dependencies file for jbs_workloads.
# This may be replaced when dependencies are built.
