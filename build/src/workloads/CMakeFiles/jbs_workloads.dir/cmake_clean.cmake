file(REMOVE_RECURSE
  "CMakeFiles/jbs_workloads.dir/tarazu.cpp.o"
  "CMakeFiles/jbs_workloads.dir/tarazu.cpp.o.d"
  "CMakeFiles/jbs_workloads.dir/teragen.cpp.o"
  "CMakeFiles/jbs_workloads.dir/teragen.cpp.o.d"
  "libjbs_workloads.a"
  "libjbs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
