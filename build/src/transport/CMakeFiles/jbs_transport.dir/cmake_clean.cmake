file(REMOVE_RECURSE
  "CMakeFiles/jbs_transport.dir/connection_manager.cpp.o"
  "CMakeFiles/jbs_transport.dir/connection_manager.cpp.o.d"
  "CMakeFiles/jbs_transport.dir/event_loop.cpp.o"
  "CMakeFiles/jbs_transport.dir/event_loop.cpp.o.d"
  "CMakeFiles/jbs_transport.dir/fault_injection.cpp.o"
  "CMakeFiles/jbs_transport.dir/fault_injection.cpp.o.d"
  "CMakeFiles/jbs_transport.dir/rdma_transport.cpp.o"
  "CMakeFiles/jbs_transport.dir/rdma_transport.cpp.o.d"
  "CMakeFiles/jbs_transport.dir/socket_util.cpp.o"
  "CMakeFiles/jbs_transport.dir/socket_util.cpp.o.d"
  "CMakeFiles/jbs_transport.dir/soft_rdma.cpp.o"
  "CMakeFiles/jbs_transport.dir/soft_rdma.cpp.o.d"
  "CMakeFiles/jbs_transport.dir/tcp_transport.cpp.o"
  "CMakeFiles/jbs_transport.dir/tcp_transport.cpp.o.d"
  "libjbs_transport.a"
  "libjbs_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
