
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/connection_manager.cpp" "src/transport/CMakeFiles/jbs_transport.dir/connection_manager.cpp.o" "gcc" "src/transport/CMakeFiles/jbs_transport.dir/connection_manager.cpp.o.d"
  "/root/repo/src/transport/event_loop.cpp" "src/transport/CMakeFiles/jbs_transport.dir/event_loop.cpp.o" "gcc" "src/transport/CMakeFiles/jbs_transport.dir/event_loop.cpp.o.d"
  "/root/repo/src/transport/fault_injection.cpp" "src/transport/CMakeFiles/jbs_transport.dir/fault_injection.cpp.o" "gcc" "src/transport/CMakeFiles/jbs_transport.dir/fault_injection.cpp.o.d"
  "/root/repo/src/transport/rdma_transport.cpp" "src/transport/CMakeFiles/jbs_transport.dir/rdma_transport.cpp.o" "gcc" "src/transport/CMakeFiles/jbs_transport.dir/rdma_transport.cpp.o.d"
  "/root/repo/src/transport/socket_util.cpp" "src/transport/CMakeFiles/jbs_transport.dir/socket_util.cpp.o" "gcc" "src/transport/CMakeFiles/jbs_transport.dir/socket_util.cpp.o.d"
  "/root/repo/src/transport/soft_rdma.cpp" "src/transport/CMakeFiles/jbs_transport.dir/soft_rdma.cpp.o" "gcc" "src/transport/CMakeFiles/jbs_transport.dir/soft_rdma.cpp.o.d"
  "/root/repo/src/transport/tcp_transport.cpp" "src/transport/CMakeFiles/jbs_transport.dir/tcp_transport.cpp.o" "gcc" "src/transport/CMakeFiles/jbs_transport.dir/tcp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
