# Empty compiler generated dependencies file for jbs_transport.
# This may be replaced when dependencies are built.
