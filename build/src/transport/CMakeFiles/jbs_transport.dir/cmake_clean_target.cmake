file(REMOVE_RECURSE
  "libjbs_transport.a"
)
