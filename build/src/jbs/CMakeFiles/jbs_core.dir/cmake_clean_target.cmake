file(REMOVE_RECURSE
  "libjbs_core.a"
)
