# Empty compiler generated dependencies file for jbs_core.
# This may be replaced when dependencies are built.
