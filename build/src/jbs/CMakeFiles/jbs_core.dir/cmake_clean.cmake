file(REMOVE_RECURSE
  "CMakeFiles/jbs_core.dir/index_cache.cpp.o"
  "CMakeFiles/jbs_core.dir/index_cache.cpp.o.d"
  "CMakeFiles/jbs_core.dir/mof_supplier.cpp.o"
  "CMakeFiles/jbs_core.dir/mof_supplier.cpp.o.d"
  "CMakeFiles/jbs_core.dir/net_merger.cpp.o"
  "CMakeFiles/jbs_core.dir/net_merger.cpp.o.d"
  "CMakeFiles/jbs_core.dir/plugin.cpp.o"
  "CMakeFiles/jbs_core.dir/plugin.cpp.o.d"
  "CMakeFiles/jbs_core.dir/protocol.cpp.o"
  "CMakeFiles/jbs_core.dir/protocol.cpp.o.d"
  "libjbs_core.a"
  "libjbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
