
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapred/api.cpp" "src/mapred/CMakeFiles/jbs_mapred.dir/api.cpp.o" "gcc" "src/mapred/CMakeFiles/jbs_mapred.dir/api.cpp.o.d"
  "/root/repo/src/mapred/collector.cpp" "src/mapred/CMakeFiles/jbs_mapred.dir/collector.cpp.o" "gcc" "src/mapred/CMakeFiles/jbs_mapred.dir/collector.cpp.o.d"
  "/root/repo/src/mapred/engine.cpp" "src/mapred/CMakeFiles/jbs_mapred.dir/engine.cpp.o" "gcc" "src/mapred/CMakeFiles/jbs_mapred.dir/engine.cpp.o.d"
  "/root/repo/src/mapred/ifile.cpp" "src/mapred/CMakeFiles/jbs_mapred.dir/ifile.cpp.o" "gcc" "src/mapred/CMakeFiles/jbs_mapred.dir/ifile.cpp.o.d"
  "/root/repo/src/mapred/local_shuffle.cpp" "src/mapred/CMakeFiles/jbs_mapred.dir/local_shuffle.cpp.o" "gcc" "src/mapred/CMakeFiles/jbs_mapred.dir/local_shuffle.cpp.o.d"
  "/root/repo/src/mapred/merger.cpp" "src/mapred/CMakeFiles/jbs_mapred.dir/merger.cpp.o" "gcc" "src/mapred/CMakeFiles/jbs_mapred.dir/merger.cpp.o.d"
  "/root/repo/src/mapred/mof.cpp" "src/mapred/CMakeFiles/jbs_mapred.dir/mof.cpp.o" "gcc" "src/mapred/CMakeFiles/jbs_mapred.dir/mof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/jbs_hdfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
