# Empty compiler generated dependencies file for jbs_mapred.
# This may be replaced when dependencies are built.
