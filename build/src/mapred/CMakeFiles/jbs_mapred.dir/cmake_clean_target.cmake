file(REMOVE_RECURSE
  "libjbs_mapred.a"
)
