file(REMOVE_RECURSE
  "CMakeFiles/jbs_mapred.dir/api.cpp.o"
  "CMakeFiles/jbs_mapred.dir/api.cpp.o.d"
  "CMakeFiles/jbs_mapred.dir/collector.cpp.o"
  "CMakeFiles/jbs_mapred.dir/collector.cpp.o.d"
  "CMakeFiles/jbs_mapred.dir/engine.cpp.o"
  "CMakeFiles/jbs_mapred.dir/engine.cpp.o.d"
  "CMakeFiles/jbs_mapred.dir/ifile.cpp.o"
  "CMakeFiles/jbs_mapred.dir/ifile.cpp.o.d"
  "CMakeFiles/jbs_mapred.dir/local_shuffle.cpp.o"
  "CMakeFiles/jbs_mapred.dir/local_shuffle.cpp.o.d"
  "CMakeFiles/jbs_mapred.dir/merger.cpp.o"
  "CMakeFiles/jbs_mapred.dir/merger.cpp.o.d"
  "CMakeFiles/jbs_mapred.dir/mof.cpp.o"
  "CMakeFiles/jbs_mapred.dir/mof.cpp.o.d"
  "libjbs_mapred.a"
  "libjbs_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
