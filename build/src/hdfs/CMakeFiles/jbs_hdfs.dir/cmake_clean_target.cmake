file(REMOVE_RECURSE
  "libjbs_hdfs.a"
)
