file(REMOVE_RECURSE
  "CMakeFiles/jbs_hdfs.dir/minidfs.cpp.o"
  "CMakeFiles/jbs_hdfs.dir/minidfs.cpp.o.d"
  "libjbs_hdfs.a"
  "libjbs_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
