# Empty dependencies file for jbs_hdfs.
# This may be replaced when dependencies are built.
