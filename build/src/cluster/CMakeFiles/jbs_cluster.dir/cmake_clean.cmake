file(REMOVE_RECURSE
  "CMakeFiles/jbs_cluster.dir/job_model.cpp.o"
  "CMakeFiles/jbs_cluster.dir/job_model.cpp.o.d"
  "CMakeFiles/jbs_cluster.dir/microbench.cpp.o"
  "CMakeFiles/jbs_cluster.dir/microbench.cpp.o.d"
  "CMakeFiles/jbs_cluster.dir/test_case.cpp.o"
  "CMakeFiles/jbs_cluster.dir/test_case.cpp.o.d"
  "libjbs_cluster.a"
  "libjbs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
