file(REMOVE_RECURSE
  "libjbs_cluster.a"
)
