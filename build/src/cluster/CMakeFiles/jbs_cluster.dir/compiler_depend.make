# Empty compiler generated dependencies file for jbs_cluster.
# This may be replaced when dependencies are built.
