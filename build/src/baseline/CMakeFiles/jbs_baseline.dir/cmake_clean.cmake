file(REMOVE_RECURSE
  "CMakeFiles/jbs_baseline.dir/http.cpp.o"
  "CMakeFiles/jbs_baseline.dir/http.cpp.o.d"
  "CMakeFiles/jbs_baseline.dir/http_shuffle.cpp.o"
  "CMakeFiles/jbs_baseline.dir/http_shuffle.cpp.o.d"
  "CMakeFiles/jbs_baseline.dir/throttle.cpp.o"
  "CMakeFiles/jbs_baseline.dir/throttle.cpp.o.d"
  "libjbs_baseline.a"
  "libjbs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
