file(REMOVE_RECURSE
  "libjbs_baseline.a"
)
