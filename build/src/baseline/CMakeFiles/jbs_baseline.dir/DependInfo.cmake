
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/http.cpp" "src/baseline/CMakeFiles/jbs_baseline.dir/http.cpp.o" "gcc" "src/baseline/CMakeFiles/jbs_baseline.dir/http.cpp.o.d"
  "/root/repo/src/baseline/http_shuffle.cpp" "src/baseline/CMakeFiles/jbs_baseline.dir/http_shuffle.cpp.o" "gcc" "src/baseline/CMakeFiles/jbs_baseline.dir/http_shuffle.cpp.o.d"
  "/root/repo/src/baseline/throttle.cpp" "src/baseline/CMakeFiles/jbs_baseline.dir/throttle.cpp.o" "gcc" "src/baseline/CMakeFiles/jbs_baseline.dir/throttle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/jbs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/jbs_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/jbs_hdfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
