# Empty compiler generated dependencies file for jbs_baseline.
# This may be replaced when dependencies are built.
