file(REMOVE_RECURSE
  "libjbs_common.a"
)
