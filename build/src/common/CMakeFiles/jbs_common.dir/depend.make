# Empty dependencies file for jbs_common.
# This may be replaced when dependencies are built.
