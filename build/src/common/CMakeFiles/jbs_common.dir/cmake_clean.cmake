file(REMOVE_RECURSE
  "CMakeFiles/jbs_common.dir/buffer_pool.cpp.o"
  "CMakeFiles/jbs_common.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/jbs_common.dir/bytes.cpp.o"
  "CMakeFiles/jbs_common.dir/bytes.cpp.o.d"
  "CMakeFiles/jbs_common.dir/compress.cpp.o"
  "CMakeFiles/jbs_common.dir/compress.cpp.o.d"
  "CMakeFiles/jbs_common.dir/config.cpp.o"
  "CMakeFiles/jbs_common.dir/config.cpp.o.d"
  "CMakeFiles/jbs_common.dir/framing.cpp.o"
  "CMakeFiles/jbs_common.dir/framing.cpp.o.d"
  "CMakeFiles/jbs_common.dir/logging.cpp.o"
  "CMakeFiles/jbs_common.dir/logging.cpp.o.d"
  "CMakeFiles/jbs_common.dir/rng.cpp.o"
  "CMakeFiles/jbs_common.dir/rng.cpp.o.d"
  "CMakeFiles/jbs_common.dir/stats.cpp.o"
  "CMakeFiles/jbs_common.dir/stats.cpp.o.d"
  "CMakeFiles/jbs_common.dir/thread_pool.cpp.o"
  "CMakeFiles/jbs_common.dir/thread_pool.cpp.o.d"
  "libjbs_common.a"
  "libjbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
