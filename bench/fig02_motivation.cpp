// Reproduces Fig. 2(a,b,c): the motivation micro-benchmarks quantifying
// JVM overhead on the shuffle path.
#include "bench/bench_util.h"
#include "cluster/microbench.h"

using namespace jbs;
using namespace jbs::cluster;

namespace {

void Fig2a() {
  bench::PrintHeader(
      "Fig 2(a): Average MOF read time vs concurrent HttpServlets (64MB "
      "MOF, ms)",
      "Java stream reads average 3.1x slower than native C read");
  bench::PrintRow({"servlets", "Java(stream)", "NativeC(read)",
                   "NativeC(mmap)", "java/native"});
  for (int servlets : {1, 2, 4, 8, 16}) {
    const double java =
        SimulateMofReadTime(servlets, 64ull << 20, IoPath::kJavaStream);
    const double native =
        SimulateMofReadTime(servlets, 64ull << 20, IoPath::kNativeRead);
    const double mmap =
        SimulateMofReadTime(servlets, 64ull << 20, IoPath::kNativeMmap);
    bench::PrintRow({std::to_string(servlets), bench::Fmt(java),
                     bench::Fmt(native), bench::Fmt(mmap),
                     bench::Fmt(java / native, "%.2fx")});
  }
}

void Fig2b() {
  bench::PrintHeader(
      "Fig 2(b): One HttpServlet -> one MOFCopier segment shuffle time (ms)",
      "Java ~3.4x slower on InfiniBand; indistinguishable on 1GigE");
  bench::PrintRow({"segment", "Java(1GigE)", "C(1GigE)", "Java(IB)",
                   "C(IB)", "IB java/C"});
  for (uint64_t mb : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const uint64_t bytes = mb << 20;
    const double j1 =
        SimulateSingleStreamShuffle(bytes, true, sim::Protocol::kTcp1GigE);
    const double c1 =
        SimulateSingleStreamShuffle(bytes, false, sim::Protocol::kTcp1GigE);
    const double jib =
        SimulateSingleStreamShuffle(bytes, true, sim::Protocol::kIpoib);
    const double cib =
        SimulateSingleStreamShuffle(bytes, false, sim::Protocol::kIpoib);
    bench::PrintRow({std::to_string(mb) + "MB", bench::Fmt(j1),
                     bench::Fmt(c1), bench::Fmt(jib), bench::Fmt(cib),
                     bench::Fmt(jib / cib, "%.2fx")});
  }
}

void Fig2c() {
  bench::PrintHeader(
      "Fig 2(c): N nodes -> one ReduceTask segments shuffle time (32MB "
      "each, ms)",
      "JVM imposes above 2.5x overhead on InfiniBand; hidden on 1GigE");
  bench::PrintRow({"nodes", "Java(1GigE)", "C(1GigE)", "Java(IB)", "C(IB)",
                   "IB java/C"});
  for (int nodes = 2; nodes <= 20; nodes += 2) {
    const uint64_t bytes = 32ull << 20;
    const double j1 =
        SimulateFanInShuffle(nodes, bytes, true, sim::Protocol::kTcp1GigE);
    const double c1 =
        SimulateFanInShuffle(nodes, bytes, false, sim::Protocol::kTcp1GigE);
    const double jib =
        SimulateFanInShuffle(nodes, bytes, true, sim::Protocol::kIpoib);
    const double cib =
        SimulateFanInShuffle(nodes, bytes, false, sim::Protocol::kIpoib);
    bench::PrintRow({std::to_string(nodes), bench::Fmt(j1), bench::Fmt(c1),
                     bench::Fmt(jib), bench::Fmt(cib),
                     bench::Fmt(jib / cib, "%.2fx")});
  }
}

}  // namespace

int main() {
  Fig2a();
  Fig2b();
  Fig2c();
  return 0;
}
