// google-benchmark micro benches for the hot data-plane components: IFile
// encode/decode, varints, CRC32, k-way merge, framing, buffer pool and the
// map-side collector. These guard the real-mode code paths' costs.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/compress.h"
#include "common/framing.h"
#include "common/lru_cache.h"
#include "common/rng.h"
#include "mapred/collector.h"
#include "mapred/ifile.h"
#include "mapred/merger.h"

namespace jbs {
namespace {

void BM_VarintEncodeDecode(benchmark::State& state) {
  std::vector<uint8_t> buffer;
  int64_t sum = 0;
  for (auto _ : state) {
    buffer.clear();
    for (int64_t v = 0; v < 1000; ++v) PutVarint64(buffer, v * 977);
    size_t offset = 0;
    for (int i = 0; i < 1000; ++i) {
      sum += *GetVarint64(buffer, &offset);
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_VarintEncodeDecode);

void BM_Crc32(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  Rng rng(1);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4 << 10)->Arg(128 << 10)->Arg(1 << 20);

void BM_CompressShuffleSegment(benchmark::State& state) {
  // A realistic sorted-segment payload (shared key prefixes).
  std::vector<uint8_t> input;
  for (int i = 0; i < 20000; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "user_event_%08d\tcount=1\n", i);
    const auto* p = reinterpret_cast<const uint8_t*>(buf);
    input.insert(input.end(), p, p + 24);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Compress(input));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_CompressShuffleSegment);

void BM_DecompressShuffleSegment(benchmark::State& state) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 20000; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "user_event_%08d\tcount=1\n", i);
    const auto* p = reinterpret_cast<const uint8_t*>(buf);
    input.insert(input.end(), p, p + 24);
  }
  const auto compressed = Compress(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Decompress(compressed));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_DecompressShuffleSegment);

void BM_IFileWrite(benchmark::State& state) {
  const std::string key = "benchmark_key_0123";
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  for (auto _ : state) {
    mr::IFileWriter writer;
    for (int i = 0; i < 1000; ++i) writer.Append(key, value);
    benchmark::DoNotOptimize(writer.Finish());
  }
  state.SetBytesProcessed(state.iterations() * 1000 *
                          static_cast<int64_t>(key.size() + value.size()));
}
BENCHMARK(BM_IFileWrite)->Arg(100)->Arg(1000);

void BM_IFileRead(benchmark::State& state) {
  mr::IFileWriter writer;
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  for (int i = 0; i < 1000; ++i) {
    writer.Append("key_" + std::to_string(i), value);
  }
  const auto segment = writer.Finish();
  for (auto _ : state) {
    mr::IFileReader reader(segment);
    mr::Record record;
    while (reader.Next(&record)) benchmark::DoNotOptimize(record);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(segment.size()));
}
BENCHMARK(BM_IFileRead)->Arg(100)->Arg(1000);

void BM_KWayMerge(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<std::vector<mr::Record>> inputs(
      static_cast<size_t>(streams));
  for (auto& records : inputs) {
    for (int i = 0; i < 2000; ++i) {
      records.push_back({std::to_string(rng.Below(1000000)), "v"});
    }
    std::sort(records.begin(), records.end(),
              [](const mr::Record& a, const mr::Record& b) {
                return a.key < b.key;
              });
  }
  int64_t merged = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<mr::RecordStream>> sources;
    for (const auto& records : inputs) {
      sources.push_back(std::make_unique<mr::VectorStream>(records));
    }
    mr::KWayMerger merger(std::move(sources));
    mr::Record record;
    while (merger.Next(&record)) ++merged;
  }
  benchmark::DoNotOptimize(merged);
  state.SetItemsProcessed(state.iterations() * streams * 2000);
}
BENCHMARK(BM_KWayMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_FrameDecoder(benchmark::State& state) {
  std::vector<uint8_t> wire;
  Frame frame;
  frame.type = 2;
  frame.payload.resize(static_cast<size_t>(state.range(0)));
  for (int i = 0; i < 64; ++i) EncodeFrame(frame, wire);
  for (auto _ : state) {
    FrameDecoder decoder;
    (void)decoder.Feed(wire);
    int frames = 0;
    while (decoder.Next()) ++frames;
    benchmark::DoNotOptimize(frames);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_FrameDecoder)->Arg(1024)->Arg(128 << 10);

void BM_BufferPoolChurn(benchmark::State& state) {
  BufferPool pool(128 << 10, 16);
  for (auto _ : state) {
    PooledBuffer a = pool.Acquire();
    PooledBuffer b = pool.Acquire();
    benchmark::DoNotOptimize(a.data());
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_BufferPoolChurn);

void BM_LruConnectionCache(benchmark::State& state) {
  LruCache<int, int> cache(512);
  Rng rng(3);
  for (auto _ : state) {
    const int key = static_cast<int>(rng.Below(700));  // churns past cap
    if (cache.Get(key) == nullptr) cache.Put(key, key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruConnectionCache);

void BM_CollectorSortSpill(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("bench_collector_" +
                                   std::to_string(::getpid()));
  Rng rng(11);
  for (auto _ : state) {
    mr::MapOutputCollector::Options options;
    options.num_partitions = 4;
    options.sort_buffer_bytes = 256 << 10;
    options.work_dir = dir;
    mr::MapOutputCollector collector(options);
    for (int i = 0; i < 10000; ++i) {
      collector.Emit("key_" + std::to_string(rng.Below(5000)),
                     "value_payload_for_benchmarking");
    }
    auto handle = collector.Finish(0, 0);
    benchmark::DoNotOptimize(handle);
    fs::remove_all(dir);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CollectorSortSpill);

}  // namespace
}  // namespace jbs

BENCHMARK_MAIN();
