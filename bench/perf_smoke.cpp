// CI perf-smoke: a minutes-not-hours regression canary for the zero-copy
// serve path. Five probes, all real sockets on loopback:
//
//   1. Large-frame server push — the serve-path direction — measured twice:
//      legacy copy-into-frame handoff vs zero-copy ext+lease handoff
//      (micro_transport's BM_ServerPushLargeFrame, reduced to one pass).
//   2. A reduced Figs. 4/5 sweep: serialized per-request service vs the
//      pipelined prefetch+send MofSupplier, small dataset, one repeat.
//   3. A wire-compression sweep: zipf-skewed compressible vs uniformly
//      random MOFs shuffled with negotiated per-chunk compression off and
//      on, recording bytes_logical / bytes_on_wire / ratio / elapsed. The
//      byte counts are deterministic, so two invariants are gated: the
//      compressible workload must at least halve its wire bytes, and the
//      random workload must ship raw (bail-out) with zero user-space
//      payload copies on the compression-off pass.
//   4. An engine sweep (DESIGN.md §15): zero-copy server push under epoll
//      vs io_uring at 1/4/16 concurrent connections, recording throughput
//      and getrusage CPU-per-MB per point. The zero-copy invariant
//      (copied payload bytes == 0) is gated under both engines; the
//      throughput/CPU deltas are recorded, not gated — on a CI runner
//      with one core the CPU-vs-connections profile is the signal, not
//      absolute MB/s. io_uring-unavailable is recorded with its reason
//      and the probe still passes with the epoll half.
//   5. An overload sweep (DESIGN.md §16): offered load at 1x/2x/4x of a
//      byte-budgeted supplier's capacity (admitted-inflight budget fits a
//      single chunk; the disk model paces service), recording shed rate
//      and served-request p99 per point. Two gates: every merge completes
//      at every load point (pushback + retry-after must absorb the
//      overload), and the 4x point actually shed (otherwise the sweep
//      measured nothing). The shed-rate and p99 values themselves are
//      recorded, not gated.
//
// Results land in a MetricsRegistry and are dumped as JSON (default
// BENCH_pr9.json, or argv[1]) so CI can archive the numbers per commit.
// A probe that cannot RUN (socket setup failure, MOF write failure) is a
// hard failure: the reason prints, NO JSON is written — a partial file
// would read downstream as "the missing probes regressed to zero" — and
// the exit code is 1. Perf deltas on probes that did run are recorded,
// not gated, because shared CI runners are too noisy for hard thresholds.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/framing.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "jbs/mof_supplier.h"
#include "jbs/net_merger.h"
#include "jbs/protocol.h"
#include "mapred/ifile.h"
#include "transport/io_uring_loop.h"
#include "transport/transport.h"

using namespace jbs;

namespace {

namespace fs = std::filesystem;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One pass of the server-push probe: the client requests, the server
/// pushes one `frame_bytes` frame, `rounds` times. Returns MB/s; a probe
/// that cannot run returns 0 with the reason in `*err`. `copied_bytes`
/// gets the serve-side user-space copy count for the pass.
double PushThroughputMBs(bool zerocopy, size_t frame_bytes, int rounds,
                         uint64_t* copied_bytes, std::string* err) {
  auto transport = net::MakeTcpTransport();
  auto server = transport->CreateServer();
  if (!server.ok()) {
    *err = "CreateServer: " + server.status().ToString();
    return 0;
  }
  const auto src =
      std::make_shared<const std::vector<uint8_t>>(frame_bytes, 0xab);
  std::vector<uint8_t> wire_scratch;
  net::ServerEndpoint::Handlers handlers;
  handlers.on_frame = [&](net::ConnId conn, Frame) {
    Frame out;
    out.type = 2;
    if (zerocopy) {
      out.ext = {src->data(), src->size()};
      out.lease = std::shared_ptr<const void>(src, src->data());
    } else {
      // The pre-zero-copy serve path copied twice: EncodeData staged the
      // chunk into the frame payload, then the endpoint encoded frame ->
      // wire buffer before write(). Pay both memcpys so the comparison
      // reflects what the zero-copy rework actually removed.
      out.payload.assign(src->begin(), src->end());
      AddPayloadCopyBytes(out.payload.size());
      wire_scratch.clear();  // EncodeFrame appends; legacy reused a
                             // cleared buffer per frame
      EncodeFrame(out, wire_scratch);
    }
    (void)(*server)->SendAsync(conn, std::move(out));
  };
  if (Status st = (*server)->Start(handlers); !st.ok()) {
    *err = "server Start: " + st.ToString();
    return 0;
  }
  auto conn = transport->Connect("127.0.0.1", (*server)->port());
  if (!conn.ok()) {
    *err = "Connect: " + conn.status().ToString();
    return 0;
  }
  Frame request;
  request.type = 1;
  request.payload.resize(1);
  ResetPayloadCopyBytes();
  const auto start = Clock::now();
  for (int i = 0; i < rounds; ++i) {
    if (Status st = (*conn)->Send(request); !st.ok()) {
      *err = "Send: " + st.ToString();
      return 0;
    }
    auto reply = (*conn)->Receive();
    if (!reply.ok()) {
      *err = "Receive: " + reply.status().ToString();
      return 0;
    }
  }
  const double secs = SecondsSince(start);
  *copied_bytes = PayloadCopyBytes();
  (*server)->Stop();
  const double mb = static_cast<double>(frame_bytes) * rounds / (1 << 20);
  return secs > 0 ? mb / secs : 0;
}

/// One reduced Figs. 4/5 run: `reducers` concurrent fetchers against one
/// supplier with the calibrated disk model. Returns serve throughput MB/s,
/// or 0 with the reason in `*err`.
double SweepThroughputMBs(bool pipelined, int prefetch_threads,
                          int fetch_window,
                          const std::vector<mr::MofHandle>& handles,
                          std::string* err, uint16_t* port_out = nullptr) {
  auto transport = net::MakeTcpTransport();
  shuffle::MofSupplier::Options options;
  options.transport = transport.get();
  options.buffer_size = 32 * 1024;
  options.buffer_count = 64;
  options.prefetch_batch = 8;
  options.disk_bytes_per_sec = 500e6;
  options.disk_seek_ms = 0.1;
  options.prefetch_threads = prefetch_threads;
  options.pipelined = pipelined;
  shuffle::MofSupplier supplier(options);
  if (Status st = supplier.Start(); !st.ok()) {
    *err = "supplier Start: " + st.ToString();
    return 0;
  }
  for (const auto& handle : handles) (void)supplier.PublishMof(handle);
  if (port_out) *port_out = supplier.port();

  Mutex fetch_err_mu;
  std::string fetch_err;
  const auto start = Clock::now();
  std::vector<std::thread> reducers;
  for (int partition = 0; partition < 2; ++partition) {
    reducers.emplace_back([&, partition] {
      auto client_transport = net::MakeTcpTransport();
      shuffle::NetMerger::Options merger_options;
      merger_options.transport = client_transport.get();
      merger_options.chunk_size = 32 * 1024 - shuffle::kDataHeaderSize;
      merger_options.data_threads = 1;
      merger_options.fetch_window = fetch_window;
      shuffle::NetMerger merger(merger_options);
      std::vector<mr::MofLocation> sources;
      for (size_t m = 0; m < handles.size(); ++m) {
        sources.push_back(
            {static_cast<int>(m), 0, "127.0.0.1", supplier.port()});
      }
      auto stream = merger.FetchAndMerge(partition, sources);
      if (!stream.ok()) {
        MutexLock lock(fetch_err_mu);
        fetch_err = "FetchAndMerge(partition " + std::to_string(partition) +
                    "): " + stream.status().ToString();
      }
      merger.Stop();
    });
  }
  for (auto& reducer : reducers) reducer.join();
  const double secs = SecondsSince(start);
  const auto stats = supplier.supplier_stats();
  supplier.Stop();
  if (!fetch_err.empty()) {
    *err = fetch_err;
    return 0;
  }
  return secs > 0 ? static_cast<double>(stats.bytes_served) / (1 << 20) / secs
                  : 0;
}

/// Writes `mofs` single-partition MOFs under `dir`. `compressible` picks
/// zipf-skewed words (sorted-shuffle-like repetition) vs uniform random
/// bytes that the codec must bail out on.
std::vector<mr::MofHandle> MakeCompressSweepMofs(const fs::path& dir,
                                                 bool compressible, int mofs,
                                                 int records) {
  static const char* kVocab[] = {"clickstream", "impression", "session",
                                 "checkout",    "pageview",   "search",
                                 "basket",      "login"};
  constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);
  std::vector<mr::MofHandle> handles;
  Rng rng(compressible ? 0x51EEC0DE : 0x0DDB17E5);
  for (int m = 0; m < mofs; ++m) {
    mr::MofWriter writer(dir / ((compressible ? "zipf_" : "rand_") +
                                std::to_string(m)));
    mr::IFileWriter segment;
    for (int r = 0; r < records; ++r) {
      std::string value;
      if (compressible) {
        while (value.size() < 150) {
          value += kVocab[rng.NextZipf(kVocabSize, 1.2) - 1];
          value += ' ';
        }
      } else {
        value.resize(150);
        for (char& c : value) c = static_cast<char>(rng.Next() & 0xFF);
      }
      segment.Append("key_" + std::to_string(100000 + r), value);
    }
    const uint64_t n = segment.records();
    (void)writer.AppendSegment(segment.Finish(), n);
    auto handle = writer.Finish(m, 0);
    if (!handle.ok()) return {};
    handles.push_back(*handle);
  }
  return handles;
}

struct CompressSweepResult {
  uint64_t bytes_logical = 0;
  uint64_t bytes_wire = 0;
  double secs = 0;
  uint64_t copied_delta = 0;  // user-space payload copies during the sweep
};

/// One shuffle of `handles` through a supplier with wire compression
/// `compress_on`, two memo-exercising sweeps (cold, then cache-hit). A
/// sweep that cannot run leaves the reason in `*err`.
CompressSweepResult CompressSweepRun(bool compress_on,
                                     const std::vector<mr::MofHandle>& handles,
                                     std::string* err) {
  CompressSweepResult result;
  auto transport = net::MakeTcpTransport();
  shuffle::MofSupplier::Options options;
  options.transport = transport.get();
  options.buffer_size = 32 * 1024;
  options.buffer_count = 64;
  options.wire_compress = compress_on;
  options.wire_compress_min_bytes = 1024;
  shuffle::MofSupplier supplier(options);
  if (Status st = supplier.Start(); !st.ok()) {
    *err = "supplier Start: " + st.ToString();
    return result;
  }
  for (const auto& handle : handles) (void)supplier.PublishMof(handle);

  const uint64_t copied_before = PayloadCopyBytes();
  const auto start = Clock::now();
  for (int sweep = 0; sweep < 2; ++sweep) {
    auto client_transport = net::MakeTcpTransport();
    shuffle::NetMerger::Options merger_options;
    merger_options.transport = client_transport.get();
    merger_options.chunk_size = 32 * 1024 - shuffle::kDataHeaderSize;
    shuffle::NetMerger merger(merger_options);
    std::vector<mr::MofLocation> sources;
    for (size_t m = 0; m < handles.size(); ++m) {
      sources.push_back(
          {static_cast<int>(m), 0, "127.0.0.1", supplier.port()});
    }
    auto stream = merger.FetchAndMerge(0, sources);
    if (!stream.ok()) {
      *err = "FetchAndMerge: " + stream.status().ToString();
      return result;
    }
    mr::Record record;
    while ((*stream)->Next(&record)) {
    }
    merger.Stop();
  }
  result.secs = SecondsSince(start);
  result.copied_delta = PayloadCopyBytes() - copied_before;
  const auto stats = supplier.supplier_stats();
  result.bytes_logical = stats.bytes_logical;
  result.bytes_wire = stats.bytes_wire;
  supplier.Stop();
  return result;
}

struct EnginePoint {
  double mbs = 0;
  double cpu_ms_per_mb = 0;
  uint64_t copied = 0;
};

/// One engine-sweep point: `conns` concurrent clients each pull
/// `rounds_per_conn` zero-copy frames of `frame_bytes` from one server
/// running `engine`. Records aggregate throughput and process CPU
/// (getrusage user+system) per MB moved.
bool EnginePushPoint(net::Engine engine, int conns, size_t frame_bytes,
                     int rounds_per_conn, EnginePoint* out, std::string* err) {
  auto transport = net::MakeTcpTransport({.engine = engine, .num_loops = 2});
  auto server = transport->CreateServer();
  if (!server.ok()) {
    *err = "CreateServer: " + server.status().ToString();
    return false;
  }
  const auto src =
      std::make_shared<const std::vector<uint8_t>>(frame_bytes, 0xab);
  net::ServerEndpoint::Handlers handlers;
  handlers.on_frame = [&](net::ConnId conn, Frame) {
    Frame out_frame;
    out_frame.type = 2;
    out_frame.ext = {src->data(), src->size()};
    out_frame.lease = std::shared_ptr<const void>(src, src->data());
    (void)(*server)->SendAsync(conn, std::move(out_frame));
  };
  if (Status st = (*server)->Start(handlers); !st.ok()) {
    *err = "server Start: " + st.ToString();
    return false;
  }
  std::vector<std::shared_ptr<net::Connection>> clients;
  for (int c = 0; c < conns; ++c) {
    auto conn = transport->Connect("127.0.0.1", (*server)->port());
    if (!conn.ok()) {
      *err = "Connect: " + conn.status().ToString();
      return false;
    }
    clients.push_back(std::move(conn).value());
  }
  Mutex err_mu;
  std::string thread_err;
  ResetPayloadCopyBytes();
  rusage before{};
  getrusage(RUSAGE_SELF, &before);
  const auto start = Clock::now();
  std::vector<std::thread> pullers;
  for (auto& client : clients) {
    pullers.emplace_back([&, client] {
      Frame request;
      request.type = 1;
      request.payload.resize(1);
      for (int i = 0; i < rounds_per_conn; ++i) {
        if (Status st = client->Send(request); !st.ok()) {
          MutexLock lock(err_mu);
          thread_err = "Send: " + st.ToString();
          return;
        }
        auto reply = client->Receive();
        if (!reply.ok()) {
          MutexLock lock(err_mu);
          thread_err = "Receive: " + reply.status().ToString();
          return;
        }
      }
    });
  }
  for (auto& puller : pullers) puller.join();
  const double secs = SecondsSince(start);
  rusage after{};
  getrusage(RUSAGE_SELF, &after);
  out->copied = PayloadCopyBytes();
  (*server)->Stop();
  if (!thread_err.empty()) {
    *err = thread_err;
    return false;
  }
  const auto cpu_secs = [](const rusage& a, const rusage& b) {
    const auto tv = [](const timeval& t) {
      return static_cast<double>(t.tv_sec) +
             static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(b.ru_utime) - tv(a.ru_utime) + tv(b.ru_stime) - tv(a.ru_stime);
  }(before, after);
  const double mb = static_cast<double>(frame_bytes) * rounds_per_conn *
                    conns / (1 << 20);
  out->mbs = secs > 0 ? mb / secs : 0;
  out->cpu_ms_per_mb = mb > 0 ? cpu_secs * 1e3 / mb : 0;
  return true;
}

struct OverloadResult {
  uint64_t requests = 0;  // includes shed requests
  uint64_t shed = 0;
  double p99_ms = 0;  // served requests only; shed replies aren't observed
  double secs = 0;
};

/// One overload-sweep point: `reducers` concurrent mergers (each a full
/// stop-and-wait fetch of every MOF) against one supplier whose
/// admitted-byte budget fits a single 1 KiB chunk, so capacity is one
/// request at a time regardless of runner hardware — `reducers` IS the
/// load multiplier. The disk model paces service so each request occupies
/// its admitted window long enough for the clients to collide. Returns
/// false with the reason in `*err` if the point cannot run or a merger
/// fails (budget-exhausted overload IS a fetch failure here).
bool OverloadSweepPoint(int reducers,
                        const std::vector<mr::MofHandle>& handles,
                        OverloadResult* out, std::string* err) {
  auto transport = net::MakeTcpTransport();
  shuffle::MofSupplier::Options options;
  options.transport = transport.get();
  options.buffer_size = 32 * 1024;
  options.buffer_count = 64;
  options.admission_max_inflight_bytes = 1500;  // one 1 KiB chunk, not two
  options.disk_bytes_per_sec = 2e6;
  shuffle::MofSupplier supplier(options);
  if (Status st = supplier.Start(); !st.ok()) {
    *err = "supplier Start: " + st.ToString();
    return false;
  }
  for (const auto& handle : handles) (void)supplier.PublishMof(handle);

  Mutex err_mu;
  std::string fetch_err;
  const auto start = Clock::now();
  std::vector<std::thread> fetchers;
  for (int r = 0; r < reducers; ++r) {
    fetchers.emplace_back([&, r] {
      auto client_transport = net::MakeTcpTransport();
      shuffle::NetMerger::Options merger_options;
      merger_options.transport = client_transport.get();
      merger_options.chunk_size = 1024;  // many chunks: more admissions
      merger_options.fetch_window = 1;   // stop-and-wait: sheds are cheap
      merger_options.pushback_retry_budget = 100000;
      merger_options.retry_backoff_ms = 1;
      shuffle::NetMerger merger(merger_options);
      std::vector<mr::MofLocation> sources;
      for (size_t m = 0; m < handles.size(); ++m) {
        sources.push_back(
            {static_cast<int>(m), 0, "127.0.0.1", supplier.port()});
      }
      auto stream = merger.FetchAndMerge(0, sources);
      if (!stream.ok()) {
        MutexLock lock(err_mu);
        fetch_err = "FetchAndMerge(reducer " + std::to_string(r) +
                    "): " + stream.status().ToString();
      } else {
        mr::Record record;
        while ((*stream)->Next(&record)) {
        }
      }
      merger.Stop();
    });
  }
  for (auto& fetcher : fetchers) fetcher.join();
  out->secs = SecondsSince(start);
  const auto stats = supplier.supplier_stats();
  out->requests = stats.requests;
  out->shed = stats.shed;
  out->p99_ms = supplier.metrics()
                    .GetHistogram("shuffle_request_latency_ms",
                                  {{"server", "mofsupplier"}})
                    ->histogram()
                    .Percentile(99);
  supplier.Stop();
  if (!fetch_err.empty()) {
    *err = fetch_err;
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pr9.json";
  MetricsRegistry registry;
  bool ok = true;        // invariant gates on probes that ran
  bool probes_ok = true; // every probe managed to run at all
  std::string probe_err;

  // --- Probe 1: large-frame server push, copy vs zero-copy -------------
  constexpr size_t kFrameBytes = 1 << 20;
  constexpr int kRounds = 200;
  bench::PrintHeader("perf-smoke 1/5: server push, 1MB frames x 200",
                     "zero-copy serve path (DESIGN.md §13)");
  uint64_t copied = 0;
  (void)PushThroughputMBs(false, kFrameBytes, 32, &copied,
                          &probe_err);  // warmup
  probe_err.clear();
  const double copy_mbs =
      PushThroughputMBs(false, kFrameBytes, kRounds, &copied, &probe_err);
  if (!probe_err.empty()) {
    std::printf("FAIL: push probe (copy) could not run: %s\n",
                probe_err.c_str());
    probes_ok = false;
  }
  registry.GetGauge("perf_smoke_push_mbs", {{"mode", "copy"}})->Set(copy_mbs);
  registry.GetGauge("perf_smoke_push_copied_bytes", {{"mode", "copy"}})
      ->Set(static_cast<double>(copied));
  bench::PrintRow({"copy", bench::Fmt(copy_mbs, "%.0fMB/s"),
                   std::to_string(copied) + "B copied"});
  uint64_t zc_copied = 0;
  probe_err.clear();
  const double zc_mbs =
      PushThroughputMBs(true, kFrameBytes, kRounds, &zc_copied, &probe_err);
  if (!probe_err.empty()) {
    std::printf("FAIL: push probe (zerocopy) could not run: %s\n",
                probe_err.c_str());
    probes_ok = false;
  }
  registry.GetGauge("perf_smoke_push_mbs", {{"mode", "zerocopy"}})
      ->Set(zc_mbs);
  registry.GetGauge("perf_smoke_push_copied_bytes", {{"mode", "zerocopy"}})
      ->Set(static_cast<double>(zc_copied));
  bench::PrintRow({"zerocopy", bench::Fmt(zc_mbs, "%.0fMB/s"),
                   std::to_string(zc_copied) + "B copied"});
  const double improvement_pct =
      copy_mbs > 0 ? (zc_mbs - copy_mbs) / copy_mbs * 100.0 : 0;
  registry.GetGauge("perf_smoke_push_improvement_pct")->Set(improvement_pct);
  std::printf("zero-copy improvement: %.1f%%\n", improvement_pct);
  if (zc_copied != 0) {
    std::printf("FAIL: zero-copy path copied %llu bytes\n",
                static_cast<unsigned long long>(zc_copied));
    ok = false;
  }

  // --- Probe 2: reduced Figs. 4/5 sweep ---------------------------------
  const fs::path dir =
      fs::temp_directory_path() / ("perf_smoke_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::vector<mr::MofHandle> handles;
  for (int m = 0; m < 4; ++m) {
    mr::MofWriter writer(dir / ("mof_" + std::to_string(m)));
    for (int p = 0; p < 2; ++p) {
      mr::IFileWriter segment;
      for (int r = 0; r < 2400; ++r) {
        segment.Append("key_" + std::to_string(r * 4 + m),
                       std::string(180, static_cast<char>('a' + p)));
      }
      const uint64_t records = segment.records();
      (void)writer.AppendSegment(segment.Finish(), records);
    }
    auto handle = writer.Finish(m, 0);
    if (!handle.ok()) {
      std::printf("FAIL: Figs. 4/5 probe could not run: MOF write: %s\n",
                  handle.status().ToString().c_str());
      std::printf("no JSON written (a partial %s would misread as "
                  "regressions)\n",
                  out_path.c_str());
      return 1;
    }
    handles.push_back(*handle);
  }
  bench::PrintHeader("perf-smoke 2/5: reduced Figs. 4/5 sweep",
                     "serialized vs pipelined 2x4, 4 MOFs x 2 reducers");
  probe_err.clear();
  (void)SweepThroughputMBs(true, 2, 4, handles, &probe_err);  // warmup
  probe_err.clear();
  const double serialized_mbs =
      SweepThroughputMBs(false, 1, 1, handles, &probe_err);
  const double pipelined_mbs =
      probe_err.empty() ? SweepThroughputMBs(true, 2, 4, handles, &probe_err)
                        : 0;
  if (!probe_err.empty()) {
    std::printf("FAIL: Figs. 4/5 probe could not run: %s\n",
                probe_err.c_str());
    probes_ok = false;
  }
  registry.GetGauge("perf_smoke_fig45_mbs", {{"mode", "serialized"}})
      ->Set(serialized_mbs);
  registry.GetGauge("perf_smoke_fig45_mbs", {{"mode", "pipelined_2x4"}})
      ->Set(pipelined_mbs);
  bench::PrintRow({"serialized", bench::Fmt(serialized_mbs, "%.0fMB/s")});
  bench::PrintRow({"pipelined 2x4", bench::Fmt(pipelined_mbs, "%.0fMB/s")});
  fs::remove_all(dir);

  // --- Probe 3: negotiated wire compression sweep -----------------------
  bench::PrintHeader("perf-smoke 3/5: wire compression sweep",
                     "zipf-skewed vs random payloads, compression off/on");
  const fs::path cdir = fs::temp_directory_path() /
                        ("perf_smoke_wc_" + std::to_string(::getpid()));
  fs::create_directories(cdir);
  for (const bool compressible : {true, false}) {
    const char* workload = compressible ? "zipf" : "random";
    const auto handles3 =
        MakeCompressSweepMofs(cdir, compressible, 3, 4000);
    if (handles3.empty()) {
      std::printf("FAIL: compression probe could not run: %s MOF write "
                  "failed\n",
                  workload);
      std::printf("no JSON written (a partial %s would misread as "
                  "regressions)\n",
                  out_path.c_str());
      return 1;
    }
    probe_err.clear();
    const auto off = CompressSweepRun(false, handles3, &probe_err);
    const auto on = probe_err.empty()
                        ? CompressSweepRun(true, handles3, &probe_err)
                        : CompressSweepResult{};
    if (!probe_err.empty()) {
      std::printf("FAIL: compression probe (%s) could not run: %s\n",
                  workload, probe_err.c_str());
      probes_ok = false;
      continue;  // gates below would misfire on zeroed results
    }
    for (const auto& [mode, run] :
         {std::pair<const char*, const CompressSweepResult&>{"off", off},
          {"on", on}}) {
      registry
          .GetGauge("perf_smoke_wire_bytes_logical",
                    {{"workload", workload}, {"compress", mode}})
          ->Set(static_cast<double>(run.bytes_logical));
      registry
          .GetGauge("perf_smoke_wire_bytes_on_wire",
                    {{"workload", workload}, {"compress", mode}})
          ->Set(static_cast<double>(run.bytes_wire));
      const double ratio =
          run.bytes_wire > 0 ? static_cast<double>(run.bytes_logical) /
                                   static_cast<double>(run.bytes_wire)
                             : 0;
      registry
          .GetGauge("perf_smoke_wire_compress_ratio",
                    {{"workload", workload}, {"compress", mode}})
          ->Set(ratio);
      registry
          .GetGauge("perf_smoke_wire_secs",
                    {{"workload", workload}, {"compress", mode}})
          ->Set(run.secs);
      bench::PrintRow({std::string(workload) + " compress=" + mode,
                       std::to_string(run.bytes_wire) + "B wire / " +
                           std::to_string(run.bytes_logical) + "B logical",
                       bench::Fmt(ratio, "%.2fx"),
                       bench::Fmt(run.secs, "%.2fs")});
      if (run.bytes_logical == 0) ok = false;
    }
    if (compressible) {
      // Deterministic gate: the repetitive workload must at least halve
      // its wire bytes once compression is negotiated.
      if (on.bytes_wire * 2 > on.bytes_logical) {
        std::printf("FAIL: zipf workload wire bytes %llu not <= half of "
                    "logical %llu\n",
                    static_cast<unsigned long long>(on.bytes_wire),
                    static_cast<unsigned long long>(on.bytes_logical));
        ok = false;
      }
    } else {
      // The min-ratio bail-out must ship random chunks raw.
      if (on.bytes_wire != on.bytes_logical) {
        std::printf("FAIL: random workload shipped %llu wire bytes for "
                    "%llu logical (expected raw)\n",
                    static_cast<unsigned long long>(on.bytes_wire),
                    static_cast<unsigned long long>(on.bytes_logical));
        ok = false;
      }
    }
    // Compression off is the PR 6 zero-copy serve path: the cache-hit
    // sweep must not have copied a single payload byte in user space.
    if (off.copied_delta != 0) {
      std::printf("FAIL: compression-off %s sweep copied %llu bytes\n",
                  workload,
                  static_cast<unsigned long long>(off.copied_delta));
      ok = false;
    }
  }
  fs::remove_all(cdir);

  // --- Probe 4: engine sweep, epoll vs io_uring -------------------------
  bench::PrintHeader("perf-smoke 4/5: engine sweep (DESIGN.md §15)",
                     "zero-copy push, epoll vs io_uring x 1/4/16 conns");
  const Status uring = net::UringAvailable();
  registry.GetGauge("perf_smoke_uring_available")
      ->Set(uring.ok() ? 1.0 : 0.0);
  if (!uring.ok()) {
    std::printf("io_uring unavailable (%s): epoll half only\n",
                uring.ToString().c_str());
  }
  std::vector<net::Engine> engines{net::Engine::kEpoll};
  if (uring.ok()) engines.push_back(net::Engine::kIoUring);
  constexpr int kConnPoints[] = {1, 4, 16};
  constexpr size_t kSweepFrame = 256 * 1024;
  constexpr int kSweepRounds = 64;
  for (const net::Engine engine : engines) {
    const char* name = net::EngineName(engine);
    EnginePoint warm;
    probe_err.clear();
    (void)EnginePushPoint(engine, 2, kSweepFrame, 16, &warm, &probe_err);
    double first_cpu = 0, last_cpu = 0;
    for (const int conns : kConnPoints) {
      EnginePoint point;
      probe_err.clear();
      if (!EnginePushPoint(engine, conns, kSweepFrame, kSweepRounds, &point,
                           &probe_err)) {
        std::printf("FAIL: engine sweep (%s, %d conns) could not run: %s\n",
                    name, conns, probe_err.c_str());
        probes_ok = false;
        continue;
      }
      const std::string conns_label = std::to_string(conns);
      registry
          .GetGauge("perf_smoke_engine_push_mbs",
                    {{"engine", name}, {"conns", conns_label}})
          ->Set(point.mbs);
      registry
          .GetGauge("perf_smoke_engine_cpu_ms_per_mb",
                    {{"engine", name}, {"conns", conns_label}})
          ->Set(point.cpu_ms_per_mb);
      registry
          .GetGauge("perf_smoke_engine_copied_bytes",
                    {{"engine", name}, {"conns", conns_label}})
          ->Set(static_cast<double>(point.copied));
      bench::PrintRow({std::string(name) + " x" + conns_label,
                       bench::Fmt(point.mbs, "%.0fMB/s"),
                       bench::Fmt(point.cpu_ms_per_mb, "%.2fms/MB"),
                       std::to_string(point.copied) + "B copied"});
      // The zero-copy invariant is engine-independent: neither data plane
      // may stage payload bytes through user space on the serve path.
      if (point.copied != 0) {
        std::printf("FAIL: %s engine copied %llu payload bytes\n", name,
                    static_cast<unsigned long long>(point.copied));
        ok = false;
      }
      if (conns == kConnPoints[0]) first_cpu = point.cpu_ms_per_mb;
      last_cpu = point.cpu_ms_per_mb;
    }
    // CPU flatness across the connection sweep: ~1.0 means the engine's
    // per-MB cost does not grow with connection count.
    if (first_cpu > 0) {
      registry.GetGauge("perf_smoke_engine_cpu_flatness", {{"engine", name}})
          ->Set(last_cpu / first_cpu);
    }
  }

  // --- Probe 5: overload sweep, 1x/2x/4x offered load -------------------
  bench::PrintHeader("perf-smoke 5/5: overload sweep (DESIGN.md §16)",
                     "admission budget = 1 chunk, 1/2/4 concurrent mergers");
  const fs::path odir = fs::temp_directory_path() /
                        ("perf_smoke_ol_" + std::to_string(::getpid()));
  fs::create_directories(odir);
  std::vector<mr::MofHandle> overload_handles;
  for (int m = 0; m < 3; ++m) {
    mr::MofWriter writer(odir / ("ol_mof_" + std::to_string(m)));
    mr::IFileWriter segment;
    for (int r = 0; r < 400; ++r) {
      segment.Append("k" + std::to_string(m) + "_" + std::to_string(100000 + r),
                     std::string(50, static_cast<char>('a' + m)));
    }
    const uint64_t records = segment.records();
    (void)writer.AppendSegment(segment.Finish(), records);
    auto handle = writer.Finish(m, 0);
    if (!handle.ok()) {
      std::printf("FAIL: overload probe could not run: MOF write: %s\n",
                  handle.status().ToString().c_str());
      std::printf("no JSON written (a partial %s would misread as "
                  "regressions)\n",
                  out_path.c_str());
      return 1;
    }
    overload_handles.push_back(*handle);
  }
  constexpr int kLoadMultipliers[] = {1, 2, 4};
  for (const int load : kLoadMultipliers) {
    OverloadResult point;
    probe_err.clear();
    if (!OverloadSweepPoint(load, overload_handles, &point, &probe_err)) {
      std::printf("FAIL: overload sweep (%dx) could not run: %s\n", load,
                  probe_err.c_str());
      probes_ok = false;
      continue;
    }
    const std::string load_label = std::to_string(load) + "x";
    const double shed_rate =
        point.requests > 0
            ? static_cast<double>(point.shed) /
                  static_cast<double>(point.requests)
            : 0;
    registry.GetGauge("perf_smoke_overload_shed_rate", {{"load", load_label}})
        ->Set(shed_rate);
    registry.GetGauge("perf_smoke_overload_p99_ms", {{"load", load_label}})
        ->Set(point.p99_ms);
    registry.GetGauge("perf_smoke_overload_secs", {{"load", load_label}})
        ->Set(point.secs);
    bench::PrintRow({load_label,
                     std::to_string(point.shed) + "/" +
                         std::to_string(point.requests) + " shed",
                     bench::Fmt(shed_rate * 100.0, "%.1f%% shed"),
                     bench::Fmt(point.p99_ms, "p99 %.2fms"),
                     bench::Fmt(point.secs, "%.2fs")});
    // The sweep only measures overload control if overload happened: with
    // the budget admitting one chunk, four stop-and-wait mergers must
    // collide at least once across ~1200 requests.
    if (load == 4 && point.shed == 0) {
      std::printf("FAIL: 4x offered load shed nothing — admission bound "
                  "not exercised\n");
      ok = false;
    }
  }
  fs::remove_all(odir);

  if (!probes_ok) {
    std::printf("\nno JSON written: a probe could not run (a partial %s "
                "would misread as regressions)\n",
                out_path.c_str());
    return 1;
  }
  if (!bench::WriteMetricsJson(registry, out_path)) {
    std::printf("FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
