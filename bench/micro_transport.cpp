// Real-mode transport and shuffle benches over loopback: the measured
// counterpart of Fig. 2(b) using the actual JBS code paths — TCP vs
// SoftRdma frame round trips and throughput, and end-to-end segment
// fetches through MofSupplier/NetMerger vs the baseline HTTP shuffle
// (with and without the calibrated JVM penalty).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "baseline/http_shuffle.h"
#include "jbs/mof_supplier.h"
#include "jbs/net_merger.h"
#include "mapred/ifile.h"
#include "transport/rdma_transport.h"
#include "transport/transport.h"

namespace jbs {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<net::Transport> MakeTransport(bool rdma) {
  if (rdma) return net::MakeSoftRdmaTransport();
  return net::MakeTcpTransport();
}

/// Echo server round-trip latency for small frames.
void BM_TransportRoundTrip(benchmark::State& state) {
  auto transport = MakeTransport(state.range(0) == 1);
  auto server = transport->CreateServer();
  if (!server.ok()) {
    state.SkipWithError("server failed");
    return;
  }
  net::ServerEndpoint::Handlers handlers;
  handlers.on_frame = [&](net::ConnId conn, Frame frame) {
    (void)(*server)->SendAsync(conn, std::move(frame));
  };
  if (!(*server)->Start(handlers).ok()) {
    state.SkipWithError("start failed");
    return;
  }
  auto conn = transport->Connect("127.0.0.1", (*server)->port());
  if (!conn.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  Frame ping;
  ping.type = 1;
  ping.payload.resize(64);
  for (auto _ : state) {
    if (!(*conn)->Send(ping).ok()) break;
    auto reply = (*conn)->Receive();
    if (!reply.ok()) break;
    benchmark::DoNotOptimize(reply->payload.data());
  }
  (*server)->Stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransportRoundTrip)
    ->Arg(0)  // TCP
    ->Arg(1)  // SoftRdma
    ->Unit(benchmark::kMicrosecond);

/// Bulk throughput: stream 64KB frames through the echo server.
void BM_TransportThroughput(benchmark::State& state) {
  auto transport = MakeTransport(state.range(0) == 1);
  auto server = transport->CreateServer();
  net::ServerEndpoint::Handlers handlers;
  handlers.on_frame = [&](net::ConnId conn, Frame frame) {
    Frame ack;
    ack.type = 2;
    (void)(*server)->SendAsync(conn, std::move(ack));
    benchmark::DoNotOptimize(frame.payload.data());
  };
  if (!(*server)->Start(handlers).ok()) {
    state.SkipWithError("start failed");
    return;
  }
  auto conn = transport->Connect("127.0.0.1", (*server)->port());
  if (!conn.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  Frame chunk;
  chunk.type = 1;
  chunk.payload.resize(64 << 10);
  for (auto _ : state) {
    if (!(*conn)->Send(chunk).ok()) break;
    auto ack = (*conn)->Receive();
    if (!ack.ok()) break;
  }
  (*server)->Stop();
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(chunk.payload.size()));
}
BENCHMARK(BM_TransportThroughput)->Arg(0)->Arg(1);

/// Serve-path direction (server -> client) with large frames: the legacy
/// copy-into-frame handoff vs the zero-copy ext+lease handoff the
/// MofSupplier send stage uses. Arg: 0=copy, 1=zero-copy.
void BM_ServerPushLargeFrame(benchmark::State& state) {
  constexpr size_t kFrameBytes = 1 << 20;
  const bool zerocopy = state.range(0) == 1;
  auto transport = net::MakeTcpTransport();
  auto server = transport->CreateServer();
  if (!server.ok()) {
    state.SkipWithError("server failed");
    return;
  }
  const auto src =
      std::make_shared<const std::vector<uint8_t>>(kFrameBytes, 0xab);
  std::vector<uint8_t> wire_scratch;
  net::ServerEndpoint::Handlers handlers;
  handlers.on_frame = [&](net::ConnId conn, Frame) {
    Frame out;
    out.type = 2;
    if (zerocopy) {
      out.ext = {src->data(), src->size()};
      out.lease = std::shared_ptr<const void>(src, src->data());
    } else {
      // Pre-zero-copy serve path: EncodeData staged the chunk into the
      // frame payload, then the endpoint encoded frame -> wire buffer
      // before write(). Pay both memcpys for a faithful baseline.
      out.payload.assign(src->begin(), src->end());
      AddPayloadCopyBytes(out.payload.size());
      wire_scratch.clear();  // EncodeFrame appends; legacy reused a
                             // cleared buffer per frame
      EncodeFrame(out, wire_scratch);
    }
    (void)(*server)->SendAsync(conn, std::move(out));
  };
  if (!(*server)->Start(handlers).ok()) {
    state.SkipWithError("start failed");
    return;
  }
  auto conn = transport->Connect("127.0.0.1", (*server)->port());
  if (!conn.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  Frame request;
  request.type = 1;
  request.payload.resize(1);
  for (auto _ : state) {
    if (!(*conn)->Send(request).ok()) break;
    auto reply = (*conn)->Receive();
    if (!reply.ok()) break;
    benchmark::DoNotOptimize(reply->payload.data());
  }
  (*server)->Stop();
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(kFrameBytes));
}
BENCHMARK(BM_ServerPushLargeFrame)
    ->Arg(0)  // legacy: memcpy the chunk into the frame
    ->Arg(1);  // zero-copy: ext span + lease

/// End-to-end segment fetch: MofSupplier + NetMerger (JBS) vs the HTTP
/// baseline, real files + real sockets. Arg: 0=JBS, 1=HTTP,
/// 2=HTTP+JVM-penalty (scaled so the bench stays fast).
void BM_SegmentFetch(benchmark::State& state) {
  const fs::path dir = fs::temp_directory_path() /
                       ("bench_fetch_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  // One 2MB segment across 4 MOFs.
  mr::IFileWriter segment_writer;
  for (int r = 0; r < 2500; ++r) {
    segment_writer.Append("key_" + std::to_string(100000 + r),
                          std::string(180, 'x'));
  }
  const auto segment = segment_writer.Finish();
  std::vector<mr::MofHandle> handles;
  for (int m = 0; m < 4; ++m) {
    mr::MofWriter writer(dir / ("mof_" + std::to_string(m)));
    (void)writer.AppendSegment(segment, 2500);
    auto handle = writer.Finish(m, 0);
    if (!handle.ok()) {
      state.SkipWithError("mof write failed");
      return;
    }
    handles.push_back(*handle);
  }

  const int mode = static_cast<int>(state.range(0));
  auto transport = net::MakeTcpTransport();
  std::unique_ptr<mr::ShuffleServer> server;
  std::unique_ptr<mr::ShuffleClient> client;
  if (mode == 0) {
    shuffle::MofSupplier::Options soptions;
    soptions.transport = transport.get();
    server = std::make_unique<shuffle::MofSupplier>(soptions);
    shuffle::NetMerger::Options noptions;
    noptions.transport = transport.get();
    client = std::make_unique<shuffle::NetMerger>(noptions);
  } else {
    baseline::JvmPenalty penalty;
    if (mode == 2) {
      // Scaled-down calibration (1/20) keeps iterations sub-second while
      // preserving the disk:net cost ratio.
      penalty = baseline::JvmPenalty::Calibrated(0.05);
    }
    server = std::make_unique<baseline::HttpShuffleServer>(
        baseline::HttpShuffleServer::Options{.servlets = 4,
                                             .penalty = penalty});
    baseline::MofCopierClient::Options coptions;
    coptions.penalty = penalty;
    coptions.spill_dir = dir / "spill";
    client = std::make_unique<baseline::MofCopierClient>(coptions);
  }
  if (!server->Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  for (const auto& handle : handles) (void)server->PublishMof(handle);
  std::vector<mr::MofLocation> sources;
  for (int m = 0; m < 4; ++m) {
    sources.push_back({m, 0, "127.0.0.1", server->port()});
  }

  uint64_t records = 0;
  for (auto _ : state) {
    auto stream = client->FetchAndMerge(0, sources);
    if (!stream.ok()) {
      state.SkipWithError("fetch failed");
      break;
    }
    mr::Record record;
    while ((*stream)->Next(&record)) ++records;
  }
  benchmark::DoNotOptimize(records);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(segment.size()) * 4);
  client->Stop();
  server->Stop();
  fs::remove_all(dir);
}
BENCHMARK(BM_SegmentFetch)
    ->Arg(0)  // JBS (MofSupplier + NetMerger)
    ->Arg(1)  // baseline HTTP shuffle
    ->Arg(2)  // baseline + scaled JVM penalty
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jbs

BENCHMARK_MAIN();
