// Reproduces Fig. 11: Terasort (128GB) execution time vs JBS transport
// buffer size, for JBS on IPoIB / RDMA / RoCE.
#include "bench/bench_util.h"
#include "cluster/job_model.h"

using namespace jbs;
using namespace jbs::cluster;

int main() {
  constexpr uint64_t kGB = 1ull << 30;
  const std::vector<TestCase> cases = {JbsOnIpoib(), JbsOnRdma(),
                                       JbsOnRoce()};
  bench::PrintHeader(
      "Fig 11: Impact of transport buffer size (Terasort 128GB)",
      "time falls steeply to 128KB then levels off; 256KB improves RDMA "
      "53% over 8KB; IPoIB gains up to 70.3% (8KB->128KB) and degrades "
      "slightly at 512KB; default buffer = 128KB");
  std::vector<std::string> header = {"buffer"};
  for (const auto& test_case : cases) header.push_back(test_case.name());
  bench::PrintRow(header, 16);
  std::vector<std::vector<double>> table;
  for (size_t kb : {8, 16, 32, 64, 128, 256, 512}) {
    std::vector<std::string> row = {std::to_string(kb) + "KB"};
    std::vector<double> values;
    for (const auto& test_case : cases) {
      ClusterConfig config;
      config.test_case = test_case;
      config.transport_buffer = kb << 10;
      const double t =
          SimulateJob(config, wl::Workload::kTerasort, 128 * kGB).total_sec;
      values.push_back(t);
      row.push_back(bench::Fmt(t, "%.0fs"));
    }
    table.push_back(values);
    bench::PrintRow(row, 16);
  }
  std::printf("improvement 8KB -> 128KB: IPoIB %s, RDMA %s, RoCE %s\n",
              bench::Pct(table[0][0], table[4][0]).c_str(),
              bench::Pct(table[0][1], table[4][1]).c_str(),
              bench::Pct(table[0][2], table[4][2]).c_str());
  std::printf("change 128KB -> 512KB: IPoIB %+.1f%%\n",
              (table[6][0] - table[4][0]) / table[4][0] * 100);
  return 0;
}
