// Reproduces Fig. 9(a-d): strong scaling (fixed 256GB) and weak scaling
// (6GB per ReduceTask) in both network environments.
#include "bench/bench_util.h"
#include "cluster/job_model.h"

using namespace jbs;
using namespace jbs::cluster;

namespace {

constexpr uint64_t kGB = 1ull << 30;

void Scaling(const std::string& title, const std::string& claim,
             const std::vector<TestCase>& cases, bool weak) {
  bench::PrintHeader(title, claim);
  std::vector<std::string> header = {"slaves", "input"};
  for (const auto& test_case : cases) header.push_back(test_case.name());
  bench::PrintRow(header, 16);
  for (int slaves = 12; slaves <= 22; slaves += 2) {
    // Weak scaling: 6GB per ReduceTask, 2 ReduceTasks per slave.
    const uint64_t input =
        weak ? 6ull * kGB * 2 * static_cast<uint64_t>(slaves) : 256 * kGB;
    std::vector<std::string> row = {
        std::to_string(slaves),
        std::to_string(input / kGB) + "GB"};
    for (const auto& test_case : cases) {
      row.push_back(bench::Fmt(
          SimulateTerasort(test_case, input, slaves).total_sec, "%.0fs"));
    }
    bench::PrintRow(row, 16);
  }
}

}  // namespace

int main() {
  Scaling("Fig 9(a): Strong scaling, InfiniBand environment (256GB)",
          "JBS-RDMA / JBS-IPoIB outperform Hadoop-IPoIB by 49.5% / 20.9% "
          "avg; linear reduction with more slaves",
          {HadoopOnIpoib(), JbsOnIpoib(), JbsOnRdma()}, /*weak=*/false);
  Scaling("Fig 9(b): Weak scaling, InfiniBand environment (6GB/reducer)",
          "JBS-RDMA / JBS-IPoIB reduce execution time by 43.6% / 21.1% avg; "
          "stable improvement ratios",
          {HadoopOnIpoib(), JbsOnIpoib(), JbsOnRdma()}, /*weak=*/true);
  Scaling("Fig 9(c): Strong scaling, Ethernet environment (256GB)",
          "JBS-RoCE up to 41.9% faster than Hadoop-10GigE; JBS-10GigE "
          "17.6% avg",
          {HadoopOn10GigE(), JbsOn10GigE(), JbsOnRoce()}, /*weak=*/false);
  Scaling("Fig 9(d): Weak scaling, Ethernet environment (6GB/reducer)",
          "JBS-RoCE up to 40.4% faster than Hadoop-10GigE; JBS-10GigE "
          "23.8% avg",
          {HadoopOn10GigE(), JbsOn10GigE(), JbsOnRoce()}, /*weak=*/true);
  return 0;
}
