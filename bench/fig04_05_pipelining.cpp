// Real-mode counterpart of Figs. 4 and 5: the same fetch workload served
// by the MOFSupplier in serialized per-request mode (HttpServlet-style,
// Fig. 4) vs. with the two-stage pipelined serve path (Fig. 5): a pool of
// prefetch threads preading through the fd cache into DataCache buffers,
// a dedicated send stage, and windowed chunk fetching on the client.
// Sweeps the pipeline depth (prefetch_threads x fetch_window) and reports
// wall time, throughput, per-request latency, and MOF switches.
//
// Runs with MofSupplier's calibrated disk model enabled (seek penalty on
// non-sequential preads + streaming-bandwidth cap, identical for every
// mode): the paper's serialized-vs-pipelined gap is driven by seek-bound
// spindles, which this container's NVMe + page cache would otherwise hide.
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "jbs/mof_supplier.h"
#include "jbs/net_merger.h"
#include "jbs/protocol.h"
#include "mapred/ifile.h"
#include "transport/transport.h"

using namespace jbs;

namespace {

namespace fs = std::filesystem;

struct RunConfig {
  const char* label;
  bool pipelined;
  int prefetch_threads;
  int fetch_window;
};

struct RunStats {
  double wall_ms = 0;
  double throughput_mbs = 0;
  double mean_latency_ms = 0;
  uint64_t group_switches = 0;
  uint64_t requests = 0;
};

/// Evicts the MOF data files from the page cache so every run's preads hit
/// storage — the disk/network overlap Figs. 4/5 are about only exists when
/// the disk stage has real latency.
void DropCaches(const std::vector<mr::MofHandle>& handles) {
  for (const auto& handle : handles) {
    const int fd = ::open(handle.data_path.c_str(), O_RDONLY);
    if (fd < 0) continue;
    ::fdatasync(fd);
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    ::close(fd);
  }
  // fadvise only drops clean, unpinned pages and occasionally leaves a run
  // cache-hot; when running privileged, drop the page cache outright.
  if (std::FILE* f = std::fopen("/proc/sys/vm/drop_caches", "w")) {
    ::sync();
    std::fputs("1", f);
    std::fclose(f);
  }
}

RunStats RunOnce(const RunConfig& config, net::Transport& transport,
                 const std::vector<mr::MofHandle>& handles,
                 MetricsRegistry* metrics = nullptr) {
  DropCaches(handles);
  shuffle::MofSupplier::Options options;
  options.transport = &transport;
  options.metrics = metrics;  // nullptr = private per-run registry
  options.instance = "supplier";
  options.buffer_size = 32 * 1024;
  options.buffer_count = 128;
  options.prefetch_batch = 8;
  // Calibrated paper-class disk (see MofSupplier::Options): this
  // container's NVMe streams either access pattern at device speed, hiding
  // the seek cost that interleaved per-request service pays on the paper's
  // spindles. Both modes are charged the identical model at the pread
  // choke point, so the comparison isolates access pattern + overlap.
  options.disk_bytes_per_sec = 500e6;
  options.disk_seek_ms = 0.1;
  options.prefetch_threads = config.prefetch_threads;
  options.pipelined = config.pipelined;
  shuffle::MofSupplier supplier(options);
  if (!supplier.Start().ok()) return {};
  for (const auto& handle : handles) (void)supplier.PublishMof(handle);

  // 4 "reducers" concurrently fetch their partitions from every MOF —
  // interleaved requests across MOFs, exactly the access pattern the
  // grouping reorders.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> reducers;
  for (int partition = 0; partition < 4; ++partition) {
    reducers.emplace_back([&, partition] {
      // Each reducer is its own process in a real deployment: give it its
      // own transport (event loop) instead of sharing the server's.
      auto client_transport = net::MakeTcpTransport();
      shuffle::NetMerger::Options merger_options;
      merger_options.transport = client_transport.get();
      merger_options.metrics = metrics;
      merger_options.instance = "reducer" + std::to_string(partition);
      merger_options.chunk_size = 32 * 1024 - shuffle::kDataHeaderSize;
      merger_options.data_threads = 1;  // one conversation per reducer:
                                        // stop-and-wait vs window shows
      merger_options.fetch_window = config.fetch_window;
      shuffle::NetMerger merger(merger_options);
      std::vector<mr::MofLocation> sources;
      for (size_t m = 0; m < handles.size(); ++m) {
        sources.push_back({static_cast<int>(m), 0, "127.0.0.1",
                           supplier.port()});
      }
      // FetchAndMerge returns once every segment is in memory; the wall
      // clock measures the serve path, not the downstream record merge.
      auto stream = merger.FetchAndMerge(partition, sources);
      if (!stream.ok()) std::abort();
      merger.Stop();
    });
  }
  for (auto& reducer : reducers) reducer.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  const auto stats = supplier.supplier_stats();
  RunStats out;
  out.wall_ms = wall_ms;
  out.throughput_mbs =
      static_cast<double>(stats.bytes_served) / (1024.0 * 1024.0) /
      (wall_ms / 1000.0);
  out.mean_latency_ms = stats.request_latency_ms.mean();
  out.group_switches = stats.group_switches;
  out.requests = stats.requests;
  supplier.Stop();
  return out;
}

}  // namespace

int main() {
  const fs::path dir =
      fs::temp_directory_path() / ("fig45_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  auto transport = net::MakeTcpTransport();

  // 8 MOFs x 4 partitions x ~900KB segments (multi-chunk at 32KB buffers).
  std::vector<mr::MofHandle> handles;
  for (int m = 0; m < 8; ++m) {
    mr::MofWriter writer(dir / ("mof_" + std::to_string(m)));
    for (int p = 0; p < 4; ++p) {
      mr::IFileWriter segment;
      for (int r = 0; r < 4800; ++r) {
        segment.Append("key_" + std::to_string(r * 8 + m),
                       std::string(180, static_cast<char>('a' + p)));
      }
      const uint64_t records = segment.records();
      (void)writer.AppendSegment(segment.Finish(), records);
    }
    auto handle = writer.Finish(m, 0);
    if (!handle.ok()) return 1;
    handles.push_back(*handle);
  }

  bench::PrintHeader(
      "Figs. 4/5 (real loopback): serialized HttpServlet-style service vs "
      "MOFSupplier two-stage pipelined prefetching",
      "prefetch pool + fd cache + send stage overlap disk and network; "
      "windowed chunk fetching removes per-chunk round trips");
  bench::PrintRow({"mode (threads x window)", "wall", "throughput",
                   "mean req latency", "MOF switches", "requests"},
                  24);
  const RunConfig kConfigs[] = {
      {"serialized (Fig.4)", false, 1, 1},
      {"pipelined 1x1", true, 1, 1},
      {"pipelined 1x4", true, 1, 4},
      {"pipelined 2x4 (default)", true, 2, 4},
      {"pipelined 4x4", true, 4, 4},
      {"pipelined 4x8", true, 4, 8},
  };
  // Warmup: fills the page cache and spins up CPU clocks so the measured
  // repeats compare modes, not machine state.
  (void)RunOnce(kConfigs[0], *transport, handles);
  (void)RunOnce(kConfigs[3], *transport, handles);
  constexpr int kRepeats = 5;
  constexpr size_t kNumConfigs = std::size(kConfigs);
  std::vector<std::vector<double>> throughputs(kNumConfigs);
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    for (size_t c = 0; c < kNumConfigs; ++c) {
      const RunStats stats = RunOnce(kConfigs[c], *transport, handles);
      throughputs[c].push_back(stats.throughput_mbs);
      bench::PrintRow({kConfigs[c].label, bench::Fmt(stats.wall_ms, "%.1fms"),
                       bench::Fmt(stats.throughput_mbs, "%.0fMB/s"),
                       bench::Fmt(stats.mean_latency_ms, "%.2fms"),
                       std::to_string(stats.group_switches),
                       std::to_string(stats.requests)},
                      24);
    }
  }
  // Per-config medians: robust to the occasional run where the page-cache
  // eviction loses to concurrent machine activity.
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double serialized_mbs = 0;
  double best_mbs = 0;
  const char* best_label = "";
  for (size_t c = 0; c < kNumConfigs; ++c) {
    const double m = median(throughputs[c]);
    if (!kConfigs[c].pipelined) {
      serialized_mbs = std::max(serialized_mbs, m);
    } else if (m > best_mbs) {
      best_mbs = m;
      best_label = kConfigs[c].label;
    }
  }
  std::printf("\nbest pipelined (%s) / serialized, median of %d: %.2fx\n",
              best_label, kRepeats,
              serialized_mbs > 0 ? best_mbs / serialized_mbs : 0.0);

  // One extra instrumented run with a shared registry: server and all
  // reducers publish into one exposition, showing the unified metrics
  // layer (fetch-latency histograms, cache hit rates, queue depths) that
  // the sweep's summary table condenses.
  MetricsRegistry registry;
  (void)RunOnce(kConfigs[3], *transport, handles, &registry);
  bench::PrintMetrics(registry, "pipelined 2x4, supplier + 4 reducers");

  fs::remove_all(dir);
  return 0;
}
