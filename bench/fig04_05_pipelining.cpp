// Real-mode counterpart of Figs. 4 and 5: the same fetch workload served
// by the MOFSupplier in serialized per-request mode (HttpServlet-style,
// Fig. 4) vs. with grouped, batched, pipelined prefetching (Fig. 5).
// Reports wall time, per-request latency, and how often the disk server
// switched between MOFs (the locality the grouping buys).
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "jbs/mof_supplier.h"
#include "jbs/net_merger.h"
#include "mapred/ifile.h"
#include "transport/transport.h"

using namespace jbs;

namespace {

namespace fs = std::filesystem;

struct RunStats {
  double wall_ms = 0;
  double mean_latency_ms = 0;
  uint64_t group_switches = 0;
  uint64_t requests = 0;
};

RunStats RunOnce(bool pipelined, const fs::path& dir,
                 net::Transport& transport,
                 const std::vector<mr::MofHandle>& handles) {
  shuffle::MofSupplier::Options options;
  options.transport = &transport;
  options.buffer_size = 64 * 1024;
  options.prefetch_batch = 8;
  options.pipelined = pipelined;
  shuffle::MofSupplier supplier(options);
  if (!supplier.Start().ok()) return {};
  for (const auto& handle : handles) (void)supplier.PublishMof(handle);

  // 4 "reducers" concurrently fetch their partitions from every MOF —
  // interleaved requests across MOFs, exactly the access pattern the
  // grouping reorders.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> reducers;
  for (int partition = 0; partition < 4; ++partition) {
    reducers.emplace_back([&, partition] {
      shuffle::NetMerger::Options merger_options;
      merger_options.transport = &transport;
      merger_options.chunk_size = 60 * 1024;
      merger_options.data_threads = 2;
      shuffle::NetMerger merger(merger_options);
      std::vector<mr::MofLocation> sources;
      for (size_t m = 0; m < handles.size(); ++m) {
        sources.push_back({static_cast<int>(m), 0, "127.0.0.1",
                           supplier.port()});
      }
      auto stream = merger.FetchAndMerge(partition, sources);
      if (stream.ok()) {
        mr::Record record;
        while ((*stream)->Next(&record)) {
        }
      }
      merger.Stop();
    });
  }
  for (auto& reducer : reducers) reducer.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  const auto stats = supplier.supplier_stats();
  RunStats out;
  out.wall_ms = wall_ms;
  out.mean_latency_ms = stats.request_latency_ms.mean();
  out.group_switches = stats.group_switches;
  out.requests = stats.requests;
  supplier.Stop();
  return out;
}

}  // namespace

int main() {
  const fs::path dir =
      fs::temp_directory_path() / ("fig45_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  auto transport = net::MakeTcpTransport();

  // 8 MOFs x 4 partitions x ~256KB segments.
  std::vector<mr::MofHandle> handles;
  for (int m = 0; m < 8; ++m) {
    mr::MofWriter writer(dir / ("mof_" + std::to_string(m)));
    for (int p = 0; p < 4; ++p) {
      mr::IFileWriter segment;
      for (int r = 0; r < 1200; ++r) {
        segment.Append("key_" + std::to_string(r * 8 + m),
                       std::string(180, static_cast<char>('a' + p)));
      }
      const uint64_t records = segment.records();
      (void)writer.AppendSegment(segment.Finish(), records);
    }
    auto handle = writer.Finish(m, 0);
    if (!handle.ok()) return 1;
    handles.push_back(*handle);
  }

  bench::PrintHeader(
      "Figs. 4/5 (real loopback): serialized HttpServlet-style service vs "
      "MOFSupplier pipelined prefetching",
      "grouping + batching raises disk locality and cuts per-request "
      "queueing delay");
  bench::PrintRow({"mode", "wall", "mean req latency", "MOF switches",
                   "requests"},
                  20);
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto serialized = RunOnce(false, dir, *transport, handles);
    const auto pipelined = RunOnce(true, dir, *transport, handles);
    bench::PrintRow({"serialized (Fig.4)",
                     bench::Fmt(serialized.wall_ms, "%.1fms"),
                     bench::Fmt(serialized.mean_latency_ms, "%.2fms"),
                     std::to_string(serialized.group_switches),
                     std::to_string(serialized.requests)},
                    20);
    bench::PrintRow({"pipelined (Fig.5)",
                     bench::Fmt(pipelined.wall_ms, "%.1fms"),
                     bench::Fmt(pipelined.mean_latency_ms, "%.2fms"),
                     std::to_string(pipelined.group_switches),
                     std::to_string(pipelined.requests)},
                    20);
  }
  fs::remove_all(dir);
  return 0;
}
