// Reproduces Fig. 12(a,b): the Tarazu suite plus WordCount and Grep at
// 30GB input, in both environments.
#include "bench/bench_util.h"
#include "cluster/job_model.h"

using namespace jbs;
using namespace jbs::cluster;

namespace {

constexpr uint64_t kGB = 1ull << 30;

void Environment(const std::string& title, const std::string& claim,
                 const std::vector<TestCase>& cases) {
  bench::PrintHeader(title, claim);
  std::vector<std::string> header = {"benchmark"};
  for (const auto& test_case : cases) header.push_back(test_case.name());
  header.push_back("best-improvement");
  bench::PrintRow(header, 17);
  for (wl::Workload workload :
       {wl::Workload::kSelfJoin, wl::Workload::kInvertedIndex,
        wl::Workload::kSequenceCount, wl::Workload::kAdjacencyList,
        wl::Workload::kWordCount, wl::Workload::kGrep}) {
    std::vector<std::string> row = {wl::WorkloadName(workload)};
    std::vector<double> values;
    for (const auto& test_case : cases) {
      ClusterConfig config;
      config.test_case = test_case;
      values.push_back(
          SimulateJob(config, workload, 30 * kGB).total_sec);
      row.push_back(bench::Fmt(values.back(), "%.0fs"));
    }
    row.push_back(bench::Pct(values.front(), values.back()));
    bench::PrintRow(row, 17);
  }
}

}  // namespace

int main() {
  Environment(
      "Fig 12(a): Tarazu suite + WordCount/Grep, InfiniBand env, 30GB",
      "JBS-RDMA: 41% avg reduction on the four shuffle-heavy benchmarks, "
      "up to 66.3% on AdjacencyList; no gain on WordCount/Grep",
      {HadoopOnIpoib(), JbsOnIpoib(), JbsOnRdma()});
  Environment(
      "Fig 12(b): same suite, Ethernet environment",
      "JBS-RoCE 36.1% avg reduction; JBS-10GigE 29.8% avg on the "
      "shuffle-heavy four",
      {HadoopOn10GigE(), JbsOn10GigE(), JbsOnRoce()});
  return 0;
}
