// Reproduces Table I: the test-case naming used across the evaluation.
#include "bench/bench_util.h"
#include "cluster/test_case.h"
#include "simnet/protocol.h"

using namespace jbs;
using namespace jbs::cluster;

int main() {
  bench::PrintHeader("Table I: Test Case Description", "");
  bench::PrintRow({"Test Case", "Transport Protocol", "Network"}, 22);
  for (const TestCase& test_case : TableOneCases()) {
    bench::PrintRow({test_case.name(),
                     sim::Params(test_case.protocol).name,
                     test_case.network()},
                    22);
  }
  std::printf(
      "\ncalibrated protocol catalog (effective payload rates):\n");
  bench::PrintRow({"protocol", "link", "per-flow", "latency", "cpu/byte",
                   "conn setup"},
                  13);
  for (auto protocol :
       {sim::Protocol::kTcp1GigE, sim::Protocol::kTcp10GigE,
        sim::Protocol::kIpoib, sim::Protocol::kSdp, sim::Protocol::kRoce,
        sim::Protocol::kRdma}) {
    const auto& p = sim::Params(protocol);
    bench::PrintRow(
        {p.name, bench::Fmt(p.link_bandwidth / 1e6, "%.0fMB/s"),
         bench::Fmt(p.per_flow_cap / 1e6, "%.0fMB/s"),
         bench::Fmt(p.latency * 1e6, "%.0fus"),
         bench::Fmt(p.cpu_per_byte * 1e9, "%.2fns"),
         bench::Fmt(p.connection_setup * 1e3, "%.1fms")},
        13);
  }
  return 0;
}
