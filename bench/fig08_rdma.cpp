// Reproduces Fig. 8: benefits of RDMA — JBS over TCP-family vs RDMA-family
// protocols, Terasort, 22 slaves.
#include "bench/bench_util.h"
#include "cluster/job_model.h"

using namespace jbs;
using namespace jbs::cluster;

int main() {
  constexpr uint64_t kGB = 1ull << 30;
  const std::vector<TestCase> cases = {JbsOn10GigE(), JbsOnIpoib(),
                                       JbsOnRoce(), JbsOnRdma()};
  bench::PrintHeader(
      "Fig 8: Benefits of RDMA (Terasort, 22 slaves)",
      "JBS on RDMA beats JBS on IPoIB (25.8% avg); JBS on RoCE beats JBS "
      "on 10GigE (15.3% avg); RDMA/RoCE better at ALL sizes");
  std::vector<std::string> header = {"input"};
  for (const auto& test_case : cases) header.push_back(test_case.name());
  bench::PrintRow(header, 16);
  for (uint64_t gb : {16, 32, 64, 128, 256}) {
    std::vector<std::string> row = {std::to_string(gb) + "GB"};
    for (const auto& test_case : cases) {
      row.push_back(bench::Fmt(
          SimulateTerasort(test_case, gb * kGB).total_sec, "%.0fs"));
    }
    bench::PrintRow(row, 16);
  }
  double rdma_sum = 0, roce_sum = 0;
  for (uint64_t gb : {16, 32, 64, 128, 256}) {
    const double ipoib = SimulateTerasort(JbsOnIpoib(), gb * kGB).total_sec;
    const double rdma = SimulateTerasort(JbsOnRdma(), gb * kGB).total_sec;
    const double tcp10 = SimulateTerasort(JbsOn10GigE(), gb * kGB).total_sec;
    const double roce = SimulateTerasort(JbsOnRoce(), gb * kGB).total_sec;
    rdma_sum += (ipoib - rdma) / ipoib;
    roce_sum += (tcp10 - roce) / tcp10;
  }
  std::printf("avg reduction JBS-RDMA vs JBS-IPoIB: %.1f%% (paper: 25.8%%)\n",
              rdma_sum / 5 * 100);
  std::printf("avg reduction JBS-RoCE vs JBS-10GigE: %.1f%% (paper: 15.3%%)\n",
              roce_sum / 5 * 100);
  return 0;
}
