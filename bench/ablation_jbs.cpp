// Ablation bench for the design choices called out in DESIGN.md §6:
// pipelined prefetching, connection consolidation, round-robin injection,
// and DataCache size — at cluster scale (model) and in real mode (actual
// NetMerger/MofSupplier statistics over loopback).
#include <filesystem>

#include "bench/bench_util.h"
#include "cluster/job_model.h"
#include "jbs/mof_supplier.h"
#include "jbs/net_merger.h"
#include "mapred/ifile.h"
#include "transport/transport.h"

using namespace jbs;
using namespace jbs::cluster;

namespace {

constexpr uint64_t kGB = 1ull << 30;

void ClusterScaleAblation() {
  bench::PrintHeader("Ablation (cluster model): Terasort 256GB, JBS-IPoIB",
                     "each JBS mechanism contributes");
  bench::PrintRow({"configuration", "time", "vs full"}, 34);
  ClusterConfig full;
  full.test_case = JbsOnIpoib();
  const double base =
      SimulateJob(full, wl::Workload::kTerasort, 256 * kGB).total_sec;
  bench::PrintRow({"full JBS", bench::Fmt(base, "%.0fs"), "-"}, 34);

  auto run = [&](const std::string& name, auto mutate) {
    ClusterConfig config = full;
    mutate(config);
    const double t =
        SimulateJob(config, wl::Workload::kTerasort, 256 * kGB).total_sec;
    bench::PrintRow({name, bench::Fmt(t, "%.0fs"),
                     bench::Fmt((t - base) / base * 100, "%+.1f%%")},
                    34);
  };
  run("no pipelined prefetching",
      [](ClusterConfig& c) { c.jbs_pipelined_prefetch = false; });
  run("no connection consolidation",
      [](ClusterConfig& c) { c.jbs_consolidation = false; });
  run("neither", [](ClusterConfig& c) {
    c.jbs_pipelined_prefetch = false;
    c.jbs_consolidation = false;
  });
  run("DataCache 1MB (few buffers)",
      [](ClusterConfig& c) { c.cost.datacache_pool_bytes = 1 << 20; });
}

/// Real-mode ablation: fetch a workload of segments through an actual
/// MofSupplier with NetMerger variants and report connection counts and
/// node switching behaviour.
void RealModeAblation() {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("jbs_ablation_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  auto transport = net::MakeTcpTransport();

  // 4 "nodes", 4 MOFs each, 1 partition, ~1MB segments.
  std::vector<mr::MofLocation> locations;
  std::vector<std::unique_ptr<shuffle::MofSupplier>> suppliers;
  int map_task = 0;
  for (int node = 0; node < 4; ++node) {
    shuffle::MofSupplier::Options options;
    options.transport = transport.get();
    options.buffer_size = 128 * 1024;
    auto supplier = std::make_unique<shuffle::MofSupplier>(options);
    if (!supplier->Start().ok()) return;
    for (int m = 0; m < 4; ++m, ++map_task) {
      mr::MofWriter writer(dir / ("mof_" + std::to_string(map_task)));
      mr::IFileWriter segment;
      for (int r = 0; r < 4000; ++r) {
        segment.Append("key_" + std::to_string(r), std::string(200, 'v'));
      }
      const uint64_t records = segment.records();
      (void)writer.AppendSegment(segment.Finish(), records);
      auto handle = writer.Finish(map_task, node);
      if (handle.ok()) (void)supplier->PublishMof(*handle);
      locations.push_back({map_task, node, "127.0.0.1", supplier->port()});
    }
    suppliers.push_back(std::move(supplier));
  }

  bench::PrintHeader("Ablation (real loopback): 16 segments from 4 nodes",
                     "consolidation keeps connections == nodes; round-robin "
                     "injection balances across nodes");
  bench::PrintRow({"configuration", "connections", "node-switches",
                   "bytes-fetched"},
                  30);
  auto run = [&](const std::string& name, bool consolidate,
                 bool round_robin) {
    shuffle::NetMerger::Options options;
    options.transport = transport.get();
    options.consolidate = consolidate;
    options.round_robin = round_robin;
    options.data_threads = 1;  // make the injection order observable
    shuffle::NetMerger merger(options);
    auto stream = merger.FetchAndMerge(0, locations);
    if (!stream.ok()) return;
    mr::Record record;
    while ((*stream)->Next(&record)) {
    }
    const auto stats = merger.merger_stats();
    bench::PrintRow({name, std::to_string(stats.connections_opened),
                     std::to_string(stats.node_switches),
                     std::to_string(stats.bytes_fetched)},
                    30);
    merger.Stop();
  };
  run("consolidated + round-robin", true, true);
  run("consolidated + FIFO", true, false);
  run("per-fetch connections", false, true);

  suppliers.clear();
  fs::remove_all(dir);
}

}  // namespace

int main() {
  ClusterScaleAblation();
  RealModeAblation();
  return 0;
}
