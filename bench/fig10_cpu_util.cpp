// Reproduces Fig. 10(a-c): sar-style CPU utilization traces (5s samples,
// averaged over all slaves), Terasort 128GB.
#include <algorithm>

#include "bench/bench_util.h"
#include "cluster/job_model.h"

using namespace jbs;
using namespace jbs::cluster;

namespace {

constexpr uint64_t kGB = 1ull << 30;

void Traces(const std::string& title, const std::string& claim,
            const std::vector<TestCase>& cases) {
  bench::PrintHeader(title, claim);
  std::vector<JobResult> results;
  results.reserve(cases.size());
  size_t rows = 0;
  for (const auto& test_case : cases) {
    results.push_back(SimulateTerasort(test_case, 128 * kGB));
    rows = std::max(rows, results.back().cpu_trace.size());
  }
  std::vector<std::string> header = {"time"};
  for (const auto& test_case : cases) header.push_back(test_case.name());
  bench::PrintRow(header, 18);
  // Print every 25 seconds (5 bins) to keep the table readable.
  for (size_t bin = 0; bin < rows; bin += 5) {
    std::vector<std::string> row = {
        bench::Fmt(static_cast<double>(bin) * 5.0, "%.0fs")};
    for (const auto& result : results) {
      if (bin < result.cpu_trace.size()) {
        row.push_back(
            bench::Fmt(result.cpu_trace[bin].utilization, "%.1f%%"));
      } else {
        row.push_back("-");
      }
    }
    bench::PrintRow(row, 18);
  }
  for (size_t i = 0; i < cases.size(); ++i) {
    std::printf("mean utilization %-18s: %.1f%%\n",
                cases[i].name().c_str(), results[i].mean_cpu_util);
  }
  if (results.size() == 2) {
    std::printf("reduction: %s\n",
                bench::Pct(results[0].mean_cpu_util,
                           results[1].mean_cpu_util)
                    .c_str());
  }
}

}  // namespace

int main() {
  Traces("Fig 10(a): CPU utilization, InfiniBand env (TCP protocol), "
         "Terasort 128GB",
         "JBS on IPoIB lowers CPU utilization by 48.1% vs Hadoop on IPoIB",
         {HadoopOnIpoib(), JbsOnIpoib()});
  Traces("Fig 10(b): CPU utilization, InfiniBand env (RDMA protocol)",
         "JBS on RDMA reduces CPU by 44.8% vs Hadoop on SDP; SDP itself "
         "only saves 15.8% vs IPoIB",
         {HadoopOnSdp(), JbsOnRdma()});
  Traces("Fig 10(c): CPU utilization, Ethernet environment",
         "JBS on RoCE / JBS on 10GigE reduce CPU by 46.4% / 33.9% vs "
         "Hadoop on 10GigE",
         {HadoopOn10GigE(), JbsOn10GigE(), JbsOnRoce()});
  return 0;
}
