// Reproduces Fig. 7(a,b): Terasort execution time vs input size, Hadoop vs
// JBS in the InfiniBand and Ethernet environments (22 slaves).
#include "bench/bench_util.h"
#include "cluster/job_model.h"

using namespace jbs;
using namespace jbs::cluster;

namespace {

constexpr uint64_t kGB = 1ull << 30;

void Environment(const std::string& title, const std::string& claim,
                 const std::vector<TestCase>& cases) {
  bench::PrintHeader(title, claim);
  std::vector<std::string> header = {"input"};
  for (const auto& test_case : cases) header.push_back(test_case.name());
  bench::PrintRow(header, 18);
  for (uint64_t gb : {16, 32, 64, 128, 256}) {
    std::vector<std::string> row = {std::to_string(gb) + "GB"};
    for (const auto& test_case : cases) {
      row.push_back(
          bench::Fmt(SimulateTerasort(test_case, gb * kGB).total_sec,
                     "%.0fs"));
    }
    bench::PrintRow(row, 18);
  }
  // Average improvement of each JBS case over its Hadoop counterpart.
  for (size_t i = 0; i + 1 < cases.size(); ++i) {
    for (size_t j = i + 1; j < cases.size(); ++j) {
      if (cases[i].engine == Engine::kHadoop &&
          cases[j].engine == Engine::kJbs &&
          cases[i].protocol == cases[j].protocol) {
        double sum = 0;
        for (uint64_t gb : {16, 32, 64, 128, 256}) {
          const double h = SimulateTerasort(cases[i], gb * kGB).total_sec;
          const double b = SimulateTerasort(cases[j], gb * kGB).total_sec;
          sum += (h - b) / h;
        }
        std::printf("avg reduction %s vs %s: %.1f%%\n",
                    cases[j].name().c_str(), cases[i].name().c_str(),
                    sum / 5 * 100);
      }
    }
  }
}

}  // namespace

int main() {
  Environment(
      "Fig 7(a): Terasort, InfiniBand environment (22 slaves)",
      "JBS on IPoIB reduces execution time 14.1%/14.8% vs Hadoop on "
      "IPoIB/SDP on average",
      {HadoopOnIpoib(), HadoopOnSdp(), JbsOnIpoib()});
  Environment(
      "Fig 7(b): Terasort, Ethernet environment (22 slaves)",
      "JBS on 1GigE/10GigE reduces execution time 20.9%/19.3% vs Hadoop; "
      "at 256GB JBS performs similarly on 1GigE and 10GigE",
      {HadoopOn1GigE(), HadoopOn10GigE(), JbsOn1GigE(), JbsOn10GigE()});
  return 0;
}
