// Small shared helpers for the figure-reproduction benches: fixed-width
// table printing and paper-comparison annotations.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace jbs::bench {

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!paper.empty()) std::printf("paper: %s\n", paper.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, const char* fmt = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Pct(double baseline, double improved) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                (baseline - improved) / baseline * 100.0);
  return buf;
}

}  // namespace jbs::bench
