// Small shared helpers for the figure-reproduction benches: fixed-width
// table printing, paper-comparison annotations, and metrics exposition
// dumps (so a bench run doubles as an observability check).
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace jbs::bench {

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!paper.empty()) std::printf("paper: %s\n", paper.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, const char* fmt = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Pct(double baseline, double improved) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                (baseline - improved) / baseline * 100.0);
  return buf;
}

/// Prints a registry's full Prometheus-style exposition under a banner.
inline void PrintMetrics(const MetricsRegistry& registry,
                         const std::string& title) {
  std::printf("\n--- metrics: %s ---\n%s", title.c_str(),
              registry.DumpText().c_str());
}

/// Writes DumpJson() to `path` (for plotting scripts); false on IO error.
inline bool WriteMetricsJson(const MetricsRegistry& registry,
                             const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << registry.DumpJson() << "\n";
  return static_cast<bool>(out);
}

}  // namespace jbs::bench
