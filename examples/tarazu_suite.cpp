// Runs the full Tarazu-style benchmark suite (real mode, scaled down) on
// the JBS shuffle: generates synthetic inputs, executes all six jobs, and
// prints per-job counters — a template for wiring your own MapReduce jobs
// through the library.
//
//   ./tarazu_suite [lines] [nodes]        (default 4000, 3)
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "hdfs/minidfs.h"
#include "jbs/plugin.h"
#include "mapred/engine.h"
#include "workloads/tarazu.h"

using namespace jbs;

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const uint64_t lines = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 4000;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 3;
  const fs::path root = fs::temp_directory_path() / "jbs_tarazu_example";
  fs::remove_all(root);

  hdfs::MiniDfs::Options dfs_options;
  dfs_options.root = root / "dfs";
  dfs_options.num_datanodes = nodes;
  dfs_options.block_size = 128 << 10;
  hdfs::MiniDfs dfs(dfs_options);

  // Synthetic stand-ins for the paper's wikipedia / database inputs.
  if (!wl::GenerateText(dfs, "/in/text", lines, 12, 5000, 1).ok() ||
      !wl::GenerateEdges(dfs, "/in/edges", lines, lines / 10, 2).ok() ||
      !wl::GenerateTuples(dfs, "/in/tuples", lines, lines / 20, 3).ok()) {
    std::fprintf(stderr, "input generation failed\n");
    return 1;
  }

  shuffle::JbsShufflePlugin plugin;
  mr::LocalJobRunner::Options options;
  options.dfs = &dfs;
  options.plugin = &plugin;
  options.work_dir = root / "work";
  options.num_nodes = nodes;
  mr::LocalJobRunner runner(options);

  const int reducers = nodes * 2;
  const std::vector<mr::JobSpec> jobs = {
      wl::SelfJoinJob("/in/tuples", "/out/selfjoin", reducers),
      wl::InvertedIndexJob("/in/text", "/out/invertedindex", reducers),
      wl::SequenceCountJob("/in/text", "/out/sequencecount", reducers),
      wl::AdjacencyListJob("/in/edges", "/out/adjacencylist", reducers),
      wl::WordCountJob("/in/text", "/out/wordcount", reducers),
      wl::GrepJob("/in/text", "/out/grep", reducers, "w1 "),
  };

  std::printf("%-16s %8s %8s %12s %12s %12s\n", "job", "time", "maps",
              "map-out-recs", "shuffled", "reduce-out");
  for (const auto& spec : jobs) {
    auto result = runner.Run(spec);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("%-16s %7.3fs %8llu %12llu %12s %12llu\n",
                spec.name.c_str(), result->total_sec,
                (unsigned long long)result->map_tasks,
                (unsigned long long)result->map_output_records,
                HumanBytes(result->shuffle_bytes).c_str(),
                (unsigned long long)result->reduce_output_records);
  }
  fs::remove_all(root);
  return 0;
}
