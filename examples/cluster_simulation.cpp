// Cluster-scale what-if tool: simulate the paper's 22-slave testbed (or
// your own) for any Table I case, workload, and input size, printing the
// phase breakdown, the binding resource, and the CPU trace.
//
//   ./cluster_simulation [case] [workload] [input_gb] [slaves]
//   e.g.  ./cluster_simulation jbs-rdma terasort 256 22
//         ./cluster_simulation hadoop-ipoib adjacencylist 30
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/job_model.h"

using namespace jbs;
using namespace jbs::cluster;

namespace {

TestCase ParseCase(const std::string& name) {
  const bool jbs = name.rfind("jbs", 0) == 0;
  const auto dash = name.find('-');
  const std::string protocol =
      dash == std::string::npos ? "ipoib" : name.substr(dash + 1);
  return {jbs ? Engine::kJbs : Engine::kHadoop,
          sim::ProtocolFromName(protocol)};
}

wl::Workload ParseWorkload(const std::string& name) {
  if (name == "terasort") return wl::Workload::kTerasort;
  if (name == "selfjoin") return wl::Workload::kSelfJoin;
  if (name == "invertedindex") return wl::Workload::kInvertedIndex;
  if (name == "sequencecount") return wl::Workload::kSequenceCount;
  if (name == "adjacencylist") return wl::Workload::kAdjacencyList;
  if (name == "wordcount") return wl::Workload::kWordCount;
  if (name == "grep") return wl::Workload::kGrep;
  std::fprintf(stderr, "unknown workload '%s', using terasort\n",
               name.c_str());
  return wl::Workload::kTerasort;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string case_name = argc > 1 ? argv[1] : "jbs-rdma";
  const std::string workload_name = argc > 2 ? argv[2] : "terasort";
  const uint64_t input_gb = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                     : 128;
  const int slaves = argc > 4 ? std::atoi(argv[4]) : 22;

  ClusterConfig config;
  config.slaves = slaves;
  config.test_case = ParseCase(case_name);
  const wl::Workload workload = ParseWorkload(workload_name);

  const auto result =
      SimulateJob(config, workload, input_gb * (1ull << 30));

  std::printf("%s, %s, %lluGB input, %d slaves (%d map + %d reduce slots "
              "each)\n",
              config.test_case.name().c_str(), wl::WorkloadName(workload),
              (unsigned long long)input_gb, slaves, config.map_slots,
              config.reduce_slots);
  std::printf("  total execution time : %8.1f s\n", result.total_sec);
  std::printf("  map phase            : %8.1f s\n", result.map_phase_sec);
  std::printf("  shuffle drained at   : %8.1f s  (bottleneck: %s)\n",
              result.shuffle_end_sec, result.bottleneck.c_str());
  std::printf("  reduce tail          : %8.1f s\n", result.reduce_tail_sec);
  std::printf("  shuffle rate/node    : %8.1f MB/s\n",
              result.shuffle_rate_node / 1e6);
  std::printf("  request overhead     : %8.1f s\n",
              result.request_overhead_sec);
  std::printf("  mean CPU utilization : %8.1f %%\n", result.mean_cpu_util);

  std::printf("\nCPU utilization trace (sar-style 5s bins, subsampled):\n");
  const size_t stride = std::max<size_t>(1, result.cpu_trace.size() / 40);
  for (size_t i = 0; i < result.cpu_trace.size(); i += stride) {
    const auto& sample = result.cpu_trace[i];
    const int bars = static_cast<int>(sample.utilization / 2.0);
    std::printf("  %6.0fs %5.1f%% |%.*s\n", sample.time_sec,
                sample.utilization, bars,
                "##################################################");
  }
  return 0;
}
