// Terasort shuffle comparison (real mode): generate data with TeraGen,
// then sort it three times — through the stock-Hadoop HTTP shuffle, JBS
// over TCP, and JBS over SoftRdma — verifying that every run produces the
// same globally sorted output, and reporting timings plus the connection /
// spill behaviour that separates the designs.
//
//   ./terasort_comparison [records] [nodes]       (default 20000, 4)
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "baseline/plugin.h"
#include "hdfs/minidfs.h"
#include "jbs/plugin.h"
#include "mapred/engine.h"
#include "mapred/local_shuffle.h"
#include "workloads/teragen.h"

using namespace jbs;

namespace {

struct RunOutcome {
  double seconds = 0;
  uint64_t shuffle_bytes = 0;
  bool sorted = false;
  uint64_t records = 0;
};

RunOutcome RunOnce(hdfs::MiniDfs& dfs, mr::ShufflePlugin& plugin,
                   const std::filesystem::path& work, int nodes,
                   const std::string& tag) {
  mr::LocalJobRunner::Options options;
  options.dfs = &dfs;
  options.plugin = &plugin;
  options.work_dir = work;
  options.num_nodes = nodes;
  options.map_slots = 2;
  options.reduce_slots = 2;
  options.output_format = mr::OutputFormat::kRaw;
  options.sort_buffer_bytes = 1 << 20;
  mr::LocalJobRunner runner(options);

  auto spec = wl::TerasortJob(dfs, "/tera/in", "/tera/out_" + tag,
                              nodes * 2);
  if (!spec.ok()) return {};
  auto result = runner.Run(*spec);
  if (!result.ok()) {
    std::fprintf(stderr, "[%s] job failed: %s\n", tag.c_str(),
                 result.status().ToString().c_str());
    return {};
  }
  RunOutcome outcome;
  outcome.seconds = result->total_sec;
  outcome.shuffle_bytes = result->shuffle_bytes;
  auto total = wl::ValidateSorted(dfs, result->output_files);
  outcome.sorted = total.ok();
  outcome.records = total.ok() ? *total : 0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const uint64_t records = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 20000;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;
  const fs::path root = fs::temp_directory_path() / "jbs_terasort_example";
  fs::remove_all(root);

  hdfs::MiniDfs::Options dfs_options;
  dfs_options.root = root / "dfs";
  dfs_options.num_datanodes = nodes;
  dfs_options.replication = 2;
  dfs_options.block_size = 256 << 10;  // scaled-down block
  hdfs::MiniDfs dfs(dfs_options);

  std::printf("TeraGen: %llu records (%s)...\n",
              (unsigned long long)records,
              HumanBytes(records * wl::kTeraRecordSize).c_str());
  if (!wl::TeraGen(dfs, "/tera/in", records, /*seed=*/2013).ok()) return 1;

  std::printf("%-28s %10s %14s %8s %10s\n", "shuffle", "time", "shuffled",
              "sorted", "records");
  auto report = [&](const std::string& name, const RunOutcome& outcome) {
    std::printf("%-28s %9.3fs %14s %8s %10llu\n", name.c_str(),
                outcome.seconds, HumanBytes(outcome.shuffle_bytes).c_str(),
                outcome.sorted ? "yes" : "NO!",
                (unsigned long long)outcome.records);
  };

  {
    baseline::HadoopShufflePlugin::Options options;
    options.spill_dir = root / "spill";
    baseline::HadoopShufflePlugin plugin(options);
    report("Hadoop HTTP shuffle",
           RunOnce(dfs, plugin, root / "w_http", nodes, "http"));
  }
  {
    baseline::HadoopShufflePlugin::Options options;
    options.spill_dir = root / "spill_jvm";
    // Scaled JVM penalty (1/10 of the Fig. 2 calibration) so the example
    // stays interactive while still showing the stream ceilings.
    options.penalty = baseline::JvmPenalty::Calibrated(0.1);
    baseline::HadoopShufflePlugin plugin(options);
    report("Hadoop HTTP + JVM penalty",
           RunOnce(dfs, plugin, root / "w_jvm", nodes, "jvm"));
  }
  {
    shuffle::JbsShufflePlugin plugin;  // TCP
    report("JBS on TCP (epoll)",
           RunOnce(dfs, plugin, root / "w_jbs_tcp", nodes, "jbs_tcp"));
  }
  {
    shuffle::JbsOptions options;
    options.transport = shuffle::TransportKind::kRdma;
    shuffle::JbsShufflePlugin plugin(options);
    report("JBS on SoftRdma (verbs)",
           RunOnce(dfs, plugin, root / "w_jbs_rdma", nodes, "jbs_rdma"));
  }

  fs::remove_all(root);
  return 0;
}
