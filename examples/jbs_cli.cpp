// jbs_cli — a small driver around the library, in the spirit of
// `hadoop jar hadoop-examples.jar`:
//
//   jbs_cli terasort  [--records N] [--nodes N] [--shuffle S] [--compress]
//   jbs_cli wordcount [--lines N]   [--nodes N] [--shuffle S] [--compress]
//   jbs_cli suite     [--lines N]   [--nodes N] [--shuffle S]
//
// where S is one of: local | http | http-jvm | jbs-tcp | jbs-rdma.
// Everything runs in-process on a MiniDFS under a temp directory; the
// point is exercising the whole stack from a shell.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>

#include "baseline/plugin.h"
#include "hdfs/minidfs.h"
#include "jbs/plugin.h"
#include "mapred/engine.h"
#include "mapred/local_shuffle.h"
#include "workloads/tarazu.h"
#include "workloads/teragen.h"

using namespace jbs;

namespace {

struct CliOptions {
  std::string command;
  uint64_t records = 50000;
  uint64_t lines = 10000;
  int nodes = 4;
  std::string shuffle = "jbs-tcp";
  bool compress = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: jbs_cli <terasort|wordcount|suite> [--records N] [--lines N]\n"
      "               [--nodes N] [--shuffle local|http|http-jvm|jbs-tcp|"
      "jbs-rdma]\n"
      "               [--compress]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 2) return false;
  options->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--records") {
      const char* v = next();
      if (!v) return false;
      options->records = std::strtoull(v, nullptr, 10);
    } else if (arg == "--lines") {
      const char* v = next();
      if (!v) return false;
      options->lines = std::strtoull(v, nullptr, 10);
    } else if (arg == "--nodes") {
      const char* v = next();
      if (!v) return false;
      options->nodes = std::atoi(v);
    } else if (arg == "--shuffle") {
      const char* v = next();
      if (!v) return false;
      options->shuffle = v;
    } else if (arg == "--compress") {
      options->compress = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

struct ShuffleChoice {
  std::unique_ptr<mr::ShufflePlugin> plugin;
  std::string description;
};

ShuffleChoice MakeShuffle(const std::string& name,
                          const std::filesystem::path& root) {
  ShuffleChoice choice;
  if (name == "local") {
    choice.plugin = std::make_unique<mr::LocalShufflePlugin>();
    choice.description = "in-process local shuffle";
  } else if (name == "http" || name == "http-jvm") {
    baseline::HadoopShufflePlugin::Options options;
    options.spill_dir = root / "spill";
    if (name == "http-jvm") {
      options.penalty = baseline::JvmPenalty::Calibrated(0.1);
      choice.description = "stock HTTP shuffle + scaled JVM penalty";
    } else {
      choice.description = "stock HTTP shuffle";
    }
    choice.plugin =
        std::make_unique<baseline::HadoopShufflePlugin>(options);
  } else if (name == "jbs-rdma") {
    shuffle::JbsOptions options;
    options.transport = shuffle::TransportKind::kRdma;
    choice.plugin = std::make_unique<shuffle::JbsShufflePlugin>(options);
    choice.description = "JBS over SoftRdma verbs";
  } else {
    choice.plugin = std::make_unique<shuffle::JbsShufflePlugin>();
    choice.description = "JBS over TCP (epoll)";
  }
  return choice;
}

mr::LocalJobRunner MakeRunner(hdfs::MiniDfs& dfs, mr::ShufflePlugin& plugin,
                              const std::filesystem::path& root,
                              const CliOptions& cli,
                              mr::OutputFormat format) {
  mr::LocalJobRunner::Options options;
  options.dfs = &dfs;
  options.plugin = &plugin;
  options.work_dir = root / "work";
  options.num_nodes = cli.nodes;
  options.output_format = format;
  options.sort_buffer_bytes = 1 << 20;
  options.conf.SetBool(conf::kCompressMapOutput, cli.compress);
  return mr::LocalJobRunner(options);
}

void Report(const mr::JobCounters& counters) {
  std::printf(
      "  %.3fs  maps=%llu reducers=%llu shuffled=%s spills=%llu "
      "retries=%llu\n",
      counters.total_sec, (unsigned long long)counters.map_tasks,
      (unsigned long long)counters.reduce_tasks,
      HumanBytes(counters.shuffle_bytes).c_str(),
      (unsigned long long)counters.map_spills,
      (unsigned long long)counters.task_retries);
}

int RunTerasort(hdfs::MiniDfs& dfs, mr::ShufflePlugin& plugin,
                const std::filesystem::path& root, const CliOptions& cli) {
  std::printf("teragen %llu records (%s)\n",
              (unsigned long long)cli.records,
              HumanBytes(cli.records * wl::kTeraRecordSize).c_str());
  if (!wl::TeraGen(dfs, "/tera/in", cli.records, 42).ok()) return 1;
  auto runner = MakeRunner(dfs, plugin, root, cli, mr::OutputFormat::kRaw);
  auto spec = wl::TerasortJob(dfs, "/tera/in", "/tera/out", cli.nodes * 2);
  if (!spec.ok()) return 1;
  auto result = runner.Run(*spec);
  if (!result.ok()) {
    std::fprintf(stderr, "terasort failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  Report(*result);
  auto total = wl::ValidateSorted(dfs, result->output_files);
  if (!total.ok() || *total != cli.records) {
    std::fprintf(stderr, "VALIDATION FAILED\n");
    return 1;
  }
  std::printf("  output globally sorted: %llu records OK\n",
              (unsigned long long)*total);
  return 0;
}

int RunWordCount(hdfs::MiniDfs& dfs, mr::ShufflePlugin& plugin,
                 const std::filesystem::path& root, const CliOptions& cli) {
  if (!wl::GenerateText(dfs, "/in/text", cli.lines, 10, 20000, 7).ok()) {
    return 1;
  }
  auto runner = MakeRunner(dfs, plugin, root, cli,
                           mr::OutputFormat::kKeyTabValue);
  auto result =
      runner.Run(wl::WordCountJob("/in/text", "/out/wc", cli.nodes * 2));
  if (!result.ok()) {
    std::fprintf(stderr, "wordcount failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  Report(*result);
  std::printf("  distinct words: %llu\n",
              (unsigned long long)result->reduce_output_records);
  return 0;
}

int RunSuite(hdfs::MiniDfs& dfs, mr::ShufflePlugin& plugin,
             const std::filesystem::path& root, const CliOptions& cli) {
  if (!wl::GenerateText(dfs, "/in/text", cli.lines, 12, 5000, 1).ok() ||
      !wl::GenerateEdges(dfs, "/in/edges", cli.lines, cli.lines / 10, 2)
           .ok() ||
      !wl::GenerateTuples(dfs, "/in/tuples", cli.lines, cli.lines / 20, 3)
           .ok()) {
    return 1;
  }
  auto runner = MakeRunner(dfs, plugin, root, cli,
                           mr::OutputFormat::kKeyTabValue);
  const int reducers = cli.nodes * 2;
  const std::vector<mr::JobSpec> jobs = {
      wl::SelfJoinJob("/in/tuples", "/out/sj", reducers),
      wl::InvertedIndexJob("/in/text", "/out/ii", reducers),
      wl::SequenceCountJob("/in/text", "/out/sc", reducers),
      wl::AdjacencyListJob("/in/edges", "/out/adj", reducers),
      wl::WordCountJob("/in/text", "/out/wc", reducers),
      wl::GrepJob("/in/text", "/out/grep", reducers, "w1 "),
  };
  for (const auto& spec : jobs) {
    std::printf("%-14s", spec.name.c_str());
    auto result = runner.Run(spec);
    if (!result.ok()) {
      std::fprintf(stderr, " failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    Report(*result);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return Usage();

  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / ("jbs_cli_" + std::to_string(::getpid()));
  fs::remove_all(root);

  hdfs::MiniDfs::Options dfs_options;
  dfs_options.root = root / "dfs";
  dfs_options.num_datanodes = cli.nodes;
  dfs_options.replication = 2;
  dfs_options.block_size = 256 << 10;
  hdfs::MiniDfs dfs(dfs_options);

  auto shuffle_choice = MakeShuffle(cli.shuffle, root);
  std::printf("shuffle: %s%s\n", shuffle_choice.description.c_str(),
              cli.compress ? " (compressed map output)" : "");

  int rc = 2;
  if (cli.command == "terasort") {
    rc = RunTerasort(dfs, *shuffle_choice.plugin, root, cli);
  } else if (cli.command == "wordcount") {
    rc = RunWordCount(dfs, *shuffle_choice.plugin, root, cli);
  } else if (cli.command == "suite") {
    rc = RunSuite(dfs, *shuffle_choice.plugin, root, cli);
  } else {
    rc = Usage();
  }
  fs::remove_all(root);
  return rc;
}
