// Quickstart: run a WordCount job through the JBS shuffle on a MiniDFS.
//
//   ./quickstart [work_dir]
//
// Demonstrates the whole public API surface in ~60 lines: build a DFS,
// load input, configure the JBS plug-in, run a job, read the output.
#include <cstdio>
#include <filesystem>

#include "hdfs/minidfs.h"
#include "jbs/plugin.h"
#include "mapred/engine.h"

using namespace jbs;

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const fs::path root = argc > 1 ? fs::path(argv[1])
                                 : fs::temp_directory_path() / "jbs_quickstart";
  fs::remove_all(root);

  // 1. A MiniDFS with 3 logical datanodes.
  hdfs::MiniDfs::Options dfs_options;
  dfs_options.root = root / "dfs";
  dfs_options.num_datanodes = 3;
  dfs_options.replication = 2;
  dfs_options.block_size = 64 << 10;
  hdfs::MiniDfs dfs(dfs_options);

  // 2. Some input text.
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    text += "jvm bypass shuffling moves intermediate data fast\n";
    text += "rdma and tcp both work through one portable library\n";
  }
  if (!dfs.WriteFile("/in/text", AsBytes(text)).ok()) return 1;

  // 3. The JBS shuffle plug-in (TCP transport, 128KB buffers — the
  //    paper's defaults). Swap TransportKind::kRdma to run over SoftRdma.
  shuffle::JbsShufflePlugin plugin;

  // 4. A WordCount job.
  mr::JobSpec spec;
  spec.name = "quickstart-wordcount";
  spec.input_path = "/in/text";
  spec.output_dir = "/out";
  spec.num_reducers = 2;
  spec.map = [](std::string_view, std::string_view line, mr::Emitter& out) {
    size_t pos = 0;
    while (pos < line.size()) {
      size_t end = line.find(' ', pos);
      if (end == std::string_view::npos) end = line.size();
      if (end > pos) out.Emit(line.substr(pos, end - pos), "1");
      pos = end + 1;
    }
  };
  spec.reduce = [](const std::string& word,
                   const std::vector<std::string>& counts, mr::Emitter& out) {
    out.Emit(word, std::to_string(counts.size()));
  };

  // 5. Run it on 3 logical nodes.
  mr::LocalJobRunner::Options run_options;
  run_options.dfs = &dfs;
  run_options.plugin = &plugin;
  run_options.work_dir = root / "work";
  run_options.num_nodes = 3;
  mr::LocalJobRunner runner(run_options);
  auto result = runner.Run(spec);
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("job finished in %.3fs over the '%s' shuffle\n",
              result->total_sec, plugin.name().c_str());
  std::printf("  maps=%llu reducers=%llu shuffled=%s local-maps=%llu/%llu\n",
              (unsigned long long)result->map_tasks,
              (unsigned long long)result->reduce_tasks,
              HumanBytes(result->shuffle_bytes).c_str(),
              (unsigned long long)result->local_maps,
              (unsigned long long)result->map_tasks);
  for (const auto& file : result->output_files) {
    std::vector<uint8_t> data;
    if (dfs.ReadFile(file, data).ok()) {
      std::printf("--- %s ---\n%.*s", file.c_str(),
                  static_cast<int>(data.size()), data.data());
    }
  }
  fs::remove_all(root);
  return 0;
}
